"""SCALE-PAT -- the non-elementary growth of the pattern machinery.

Sections 3 and 6 of the paper point out that the number and the maximum size
of k-patterns are non-elementary in the nesting depth of the tgd.  We measure
``count_k_patterns`` (closed form, no enumeration) and the actual enumeration
across depth and k, reporting the counts the closed form predicts.
"""

import pytest

from repro.core.patterns import count_k_patterns, enumerate_k_patterns
from repro.logic.parser import parse_nested_tgd


def linear_nesting(depth: int):
    """S1(x1) -> (S2(x2) -> ( ... -> T(x1))) with *depth* parts."""
    text = "S1(x1)"
    for i in range(2, depth + 1):
        text += f" -> (S{i}(x{i})"
    text += " -> T(x1)" + ")" * (depth - 1)
    return parse_nested_tgd(text)


@pytest.mark.parametrize("depth", [1, 2, 3])
def test_scale_pattern_count_by_depth(benchmark, depth):
    tgd = linear_nesting(depth)
    count = benchmark(count_k_patterns, tgd, 2)
    # tower of (k+1)s: depth 1 -> 1 (flat), depth 2 -> 3, depth 3 -> 3^3
    expected = {1: 1, 2: 3, 3: 27}[depth]
    assert count == expected


def test_scale_pattern_count_tower(benchmark):
    """Depth 4 at k=2 already gives 3^27 = 7.6 trillion patterns -- countable
    in closed form, hopeless to enumerate.  This is the non-elementary wall."""
    tgd = linear_nesting(4)
    count = benchmark(count_k_patterns, tgd, 2)
    assert count == 3 ** 27


@pytest.mark.parametrize("k", [1, 2, 3])
def test_scale_pattern_enumeration_by_k(benchmark, k, sigma_star):
    patterns = benchmark(enumerate_k_patterns, sigma_star, k, None)
    assert len(patterns) == count_k_patterns(sigma_star, k)


def test_scale_pattern_resource_guard(sigma_star):
    """The enumeration refuses to silently truncate: it raises instead."""
    import pytest as _pytest

    from repro.errors import ResourceLimitExceeded

    with _pytest.raises(ResourceLimitExceeded):
        enumerate_k_patterns(sigma_star, 4, max_patterns=100)
