"""FIG8/THM51 -- Figure 8 and Theorem 5.1: the Turing-machine enumeration.

Regenerates the triangular enumeration of TM configurations in the chase
target and exhibits the paper's dichotomy: a halting machine gives an
origin-connected f-block whose size plateaus regardless of the successor
length, while a looping machine's block grows (quadratically -- the area of
the Figure 8 triangle).  The enumeration also has f-degree <= 4 throughout,
which is the structural fact behind Theorem 5.2.
"""

from repro.engine.chase import chase_so_tgd
from repro.engine.gaifman import fblock_degree
from repro.turing.encoding import run_source_instance
from repro.turing.machine import halting_machine, looping_machine
from repro.turing.reduction import build_reduction, enumeration_chain_length


def run_enumeration(machine, reduction, n):
    source = run_source_instance(machine, "", max_steps=n, length=n)
    target = chase_so_tgd(source, reduction.so_tgd)
    return target


def test_fig8_halting_machine_plateaus(benchmark):
    machine = halting_machine(3)
    reduction = build_reduction(machine)

    def chains():
        return [
            enumeration_chain_length(reduction, run_enumeration(machine, reduction, n))
            for n in (5, 7, 9)
        ]

    lengths = benchmark(chains)
    assert lengths[0] == lengths[1] == lengths[2] > 0


def test_fig8_looping_machine_grows(benchmark):
    machine = looping_machine()
    reduction = build_reduction(machine)

    def chains():
        return [
            enumeration_chain_length(reduction, run_enumeration(machine, reduction, n))
            for n in (4, 6, 8)
        ]

    lengths = benchmark(chains)
    assert lengths[0] < lengths[1] < lengths[2]
    # quadratic shape: the triangle of Figure 8
    assert lengths[2] - lengths[1] > lengths[1] - lengths[0]


def test_fig8_bounded_fdegree(benchmark):
    """Theorem 5.2's hook: growing blocks, f-degree bounded by a constant."""
    machine = looping_machine()
    reduction = build_reduction(machine)
    target = benchmark(run_enumeration, machine, reduction, 8)
    assert fblock_degree(target) <= 4


def test_fig8_key_dependency_is_single(benchmark):
    reduction = benchmark(build_reduction, halting_machine(2))
    # one key dependency ("unique predecessor"), and a plain SO tgd
    assert reduction.key_dependency.name == "unique_predecessor"
    assert reduction.so_tgd.is_plain()
