"""EX53 -- Example 5.3: legal canonical instances under source egds.

Cloning the inner part of the Example 5.3 tgd produces a canonical source
instance that violates the source egd (P1 functional in its first argument);
the *legal* canonical instances of Definition 5.4 chase the egd in, merging
the cloned P1 values, and replay the equalities inside the target's Skolem
nulls.  With the egd, implication reasoning changes (Theorem 5.7) and the
boundedness analysis uses the legal instances (Theorem 5.5).
"""

from repro.core.canonical import canonical_instances, legal_canonical_instances
from repro.core.fblock_analysis import decide_bounded_fblock_size
from repro.core.implication import implies
from repro.core.patterns import Pattern
from repro.engine.egd_chase import satisfies_egds
from repro.logic.parser import parse_egd, parse_nested_tgd, parse_tgd


CLONED = Pattern(1, (Pattern(2), Pattern(2)))


def test_ex53_plain_canonical_violates_egd(benchmark, sigma_53, egd_53):
    canon = benchmark(canonical_instances, CLONED, sigma_53)
    assert not satisfies_egds(canon.source, [egd_53])


def test_ex53_legal_canonical_satisfies_egd(benchmark, sigma_53, egd_53):
    canon = benchmark(legal_canonical_instances, CLONED, sigma_53, [egd_53])
    assert satisfies_egds(canon.source, [egd_53])
    assert len(canon.source) == 4  # the two P1 atoms merged
    # the merged constant reached into the target atoms
    p1_value = canon.source.facts_of("P1")[0].args[1]
    assert all(p1_value in f.args for f in canon.target)


def test_ex53_implication_flips_with_egd(benchmark):
    """Theorem 5.7's phenomenon: an implication that holds only relative to
    sources satisfying the key."""
    sigma = parse_tgd("S(x,y) -> R2(y,y)")
    target = parse_tgd("S(x,y) & S(x,z) -> R2(y,z)")
    egd = parse_egd("S(x,y) & S(x,z) -> y = z")

    def both():
        return (
            implies([sigma], target),
            implies([sigma], target, source_egds=[egd]),
        )

    without, with_egd = benchmark(both)
    assert not without and with_egd


def test_ex53_boundedness_flips_with_egd(benchmark):
    """Theorem 5.5/5.6's phenomenon on a one-variable variant."""
    tgd = parse_nested_tgd("Q(z) -> exists y . (P(z,x) -> R(y,x))")
    egd = parse_egd("P(z,x) & P(z,xp) -> x = xp")

    def both():
        return (
            decide_bounded_fblock_size([tgd]).bounded,
            decide_bounded_fblock_size([tgd], source_egds=[egd]).bounded,
        )

    without, with_egd = benchmark(both)
    assert not without and with_egd
