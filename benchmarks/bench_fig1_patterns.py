"""FIG1 -- Figure 1 of the paper: the eight 1-patterns of the tgd sigma (*).

Regenerates ``P_1(sigma)`` and measures the enumeration.  The paper displays
the patterns p1 .. p8; we assert the exact set.
"""

from repro.core.patterns import Pattern, one_patterns


EXPECTED = {
    Pattern(1),
    Pattern(1, (Pattern(2),)),
    Pattern(1, (Pattern(3),)),
    Pattern(1, (Pattern(2), Pattern(3))),
    Pattern(1, (Pattern(3, (Pattern(4),)),)),
    Pattern(1, (Pattern(2), Pattern(3, (Pattern(4),)))),
    Pattern(1, (Pattern(3), Pattern(3, (Pattern(4),)))),
    Pattern(1, (Pattern(2), Pattern(3), Pattern(3, (Pattern(4),)))),
}


def test_fig1_one_pattern_enumeration(benchmark, sigma_star):
    patterns = benchmark(one_patterns, sigma_star)
    assert len(patterns) == 8
    assert set(patterns) == EXPECTED


def test_fig1_two_pattern_enumeration(benchmark, sigma_star):
    from repro.core.patterns import enumerate_k_patterns

    patterns = benchmark(enumerate_k_patterns, sigma_star, 2)
    # |P*_2(s4)| = 1, |P*_2(s3)| = 3, |P*_2(s2)| = 1
    # |P_2| = 3^1 (s2 multiplicities) * 3^3 (s3-tree multiplicities) = 81
    assert len(patterns) == 81
    assert all(p.is_k_pattern(2) for p in patterns)
