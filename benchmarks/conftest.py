"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one artifact of the paper (a figure or a
worked example; the paper has no empirical tables) and measures the runtime
of the machinery that produces it.  The asserted *shapes* -- who wins, what
grows, what stays flat -- are the reproduction targets; absolute timings
depend on this pure-Python engine.  ``python benchmarks/report.py``
regenerates all artifacts as text and is the source for EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro import parse_egd, parse_nested_tgd, parse_so_tgd, parse_tgd


@pytest.fixture
def sigma_star():
    return parse_nested_tgd(
        "S1(x1) -> exists y1 . ("
        "  (S2(x2) -> R2(y1, x2))"
        "  & (S3(x1, x3) -> R3(y1, x3) & (S4(x3, x4) -> exists y2 . R4(y2, x4)))"
        ")"
    )


@pytest.fixture
def intro_nested():
    return parse_nested_tgd("S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))")


@pytest.fixture
def tau_310():
    return parse_nested_tgd("S1(x1) -> exists y . (S2(x2) -> R(x2, y))")


@pytest.fixture
def tau_prime_310():
    return parse_tgd("S2(x2) -> exists z . R(x2, z)")


@pytest.fixture
def tau_dprime_310():
    return parse_tgd("S1(x1) & S2(x2) -> R(x2, x1)")


@pytest.fixture
def so_tgd_48():
    return parse_so_tgd("S(x,y) -> R(f(x), f(y)) & R(f(y), f(x))")


@pytest.fixture
def so_tgd_413():
    return parse_so_tgd("S(x,y) -> R(f(x), f(y))")


@pytest.fixture
def so_tgd_414():
    return parse_so_tgd("S(x,y) & Q(z) -> R(f(z,x), f(z,y), g(z))")


@pytest.fixture
def so_tgd_415():
    return parse_so_tgd("S(x,y) & Q(z) -> R(f(x,y,z), g(z), x)")


@pytest.fixture
def nested_415():
    return parse_nested_tgd("Q(z) -> exists u . (S(x,y) -> exists v . R(v, u, x))")


@pytest.fixture
def sigma_53():
    return parse_nested_tgd("Q(z) -> exists y . (P1(z,x1) & P2(z,x2) -> R(y,x1,x2))")


@pytest.fixture
def egd_53():
    return parse_egd("P1(z,x1) & P1(z,xp) -> x1 = xp")
