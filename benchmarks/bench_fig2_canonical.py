"""FIG2 -- Figure 2 of the paper: canonical source and target instances of p8.

Regenerates ``I_{p8}`` and ``J_{p8}`` for the full 1-pattern of sigma (*) and
measures the construction.  Figure 2 shows I_{p8} with the five source atoms
S1(a1); S2(a2); S3(a1,a3); S3(a1,a4); S4(a4,a5) and J_{p8} with the four
target atoms R2(f(a1),a2); R3(f(a1),a3); R3(f(a1),a4); R4(g(a1,a4,a5),a5).
"""

from collections import Counter

from repro.core.canonical import canonical_instances
from repro.core.patterns import Pattern


P8 = Pattern(1, (Pattern(2), Pattern(3), Pattern(3, (Pattern(4),))))


def test_fig2_canonical_instances(benchmark, sigma_star):
    canon = benchmark(canonical_instances, P8, sigma_star)
    assert Counter(f.relation for f in canon.source) == Counter(
        {"S1": 1, "S2": 1, "S3": 2, "S4": 1}
    )
    assert Counter(f.relation for f in canon.target) == Counter(
        {"R2": 1, "R3": 2, "R4": 1}
    )
    # the null f(x1) is shared by R2 and both R3 facts; R4 has its own g-null
    nulls = [n for f in canon.target for n in f.nulls()]
    counts = sorted(Counter(nulls).values())
    assert counts == [1, 3]
    # the g-null records the full ancestor assignment (arity 3)
    g_null = next(n for n in nulls if Counter(nulls)[n] == 1)
    assert g_null.arity == 3
