"""A tour of the expressiveness hierarchy: GLAV < nested GLAV < plain SO tgds.

Walks through the paper's witnesses for both strict containments and the
tools (Sections 3 and 4) that decide or certify each separation:

1. the introduction's nested tgd is not GLAV-expressible -- decided by the
   f-block boundedness procedure (Theorem 4.2);
2. ``S(x,y) -> R(f(x),f(y))`` is not nested-GLAV-expressible -- certified by
   the f-degree tool (Theorem 4.12 / Proposition 4.13);
3. Example 4.14's SO tgd defeats the f-degree tool (clique fact graphs) but
   falls to the path-length tool (Theorem 4.16);
4. Example 4.15's SO tgd passes both necessary conditions -- and is in fact
   equivalent to a nested tgd.

Run with:  python examples/expressiveness_tour.py
"""

from repro import (
    decide_bounded_fblock_size,
    is_equivalent_to_glav,
    nested_expressibility_report,
    parse_nested_tgd,
    parse_so_tgd,
    path_length_bound,
)
from repro.workloads.families import SUCCESSOR_FAMILY, SUCCESSOR_Q_FAMILY


def show_report(title, report) -> None:
    print(f"\n--- {title} ---")
    print(f"  f-block sizes: {[p.fblock_size for p in report.profiles]}")
    print(f"  f-degrees:     {[p.fdegree for p in report.profiles]}")
    print(f"  path lengths:  {[p.path_length for p in report.profiles]}")
    verdict = {False: "NOT nested-GLAV expressible", None: "inconclusive"}[
        report.nested_expressible
    ]
    print(f"  verdict: {verdict}")
    print(f"  reason:  {report.reason}")


def main() -> None:
    # ------------------------------------------------------------- step 1
    nested = parse_nested_tgd(
        "S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))"
    )
    verdict = decide_bounded_fblock_size([nested])
    print("step 1: the introduction's nested tgd")
    print("  bounded f-block size:", verdict.bounded)
    print("  f-block growth under cloning:", verdict.growth)
    print("  equivalent to a GLAV mapping:", is_equivalent_to_glav([nested]))

    # ------------------------------------------------------------- step 2
    simple_so = parse_so_tgd("S(x,y) -> R(f(x), f(y))")
    report = nested_expressibility_report([simple_so], SUCCESSOR_FAMILY, [2, 4, 6, 8])
    show_report("step 2: S(x,y) -> R(f(x),f(y)) on successor relations", report)

    # ------------------------------------------------------------- step 3
    ex414 = parse_so_tgd("S(x,y) & Q(z) -> R(f(z,x), f(z,y), g(z))")
    report = nested_expressibility_report([ex414], SUCCESSOR_Q_FAMILY, [2, 3, 4, 5])
    show_report("step 3: Example 4.14 (clique fact graphs)", report)

    # ------------------------------------------------------------- step 4
    ex415 = parse_so_tgd("S(x,y) & Q(z) -> R(f(x,y,z), g(z), x)")
    report = nested_expressibility_report([ex415], SUCCESSOR_Q_FAMILY, [2, 3, 4, 5])
    show_report("step 4: Example 4.15 (same f-blocks, star null graph)", report)

    nested415 = parse_nested_tgd("Q(z) -> exists u . (S(x,y) -> exists v . R(v,u,x))")
    print("\n  ... and indeed Example 4.15 is equivalent to the nested tgd")
    print("     ", nested415)
    print("  whose effective path-length bound (Theorem 4.16) is",
          path_length_bound(nested415))


if __name__ == "__main__":
    main()
