"""Composing schema mappings: why SO tgds exist, and where nested tgds sit.

The paper's introduction places nested tgds strictly between GLAV mappings
and plain SO tgds, and recalls that SO tgds were invented because GLAV is not
closed under composition (reference [8]).  This example composes a two-stage
data-exchange pipeline and inspects what the composition needs: Skolem
functions, equalities between terms, and -- with existentials in both stages
-- nested terms.

Run with:  python examples/composition_pipeline.py
"""

from repro import compose, parse_instance, parse_tgd
from repro.engine.chase import chase_so_tgd
from repro.engine.homomorphism import homomorphically_equivalent
from repro.mappings.composition import compose_chase


def main() -> None:
    # Stage 1: registration system -> interchange format.
    stage1 = [
        parse_tgd("Takes(n, co) -> Takes1(n, co)", name="copy"),
        parse_tgd("Takes(n, co) -> exists s . Student(n, s)", name="assign_id"),
    ]
    # Stage 2: interchange format -> enrollment warehouse.
    stage2 = [
        parse_tgd("Student(n, s) & Takes1(n, co) -> Enrolled(s, co)", name="enroll"),
    ]

    print("stage 1 (source -> interchange):")
    for tgd in stage1:
        print("  ", tgd)
    print("stage 2 (interchange -> warehouse):")
    for tgd in stage2:
        print("  ", tgd)

    composed = compose(stage1, stage2, name="pipeline")
    print("\ncomposition (a single SO tgd):")
    print("  ", composed)
    print("  functions:", composed.functions)
    print("  plain:", composed.is_plain(),
          "(equalities between terms appear -- beyond nested tgds!)")

    # The chase through the pipeline agrees with the one-step chase.
    source = parse_instance(
        "Takes(alice, db), Takes(alice, os), Takes(bob, db)"
    )
    one_step = chase_so_tgd(source, composed)
    two_step = compose_chase(source, stage1, stage2)
    print("\nsource:", source)
    print("one-step chase:", sorted(map(repr, one_step)))
    print("two-step chase agrees (hom-equivalent):",
          homomorphically_equivalent(one_step, two_step))

    # With existentials in both stages, nested terms appear -- the full SO
    # tgd language, two levels above nested tgds in the paper's hierarchy.
    stage1b = [parse_tgd("S(x) -> exists y . M(x, y)")]
    stage2b = [parse_tgd("M(x, y) -> exists z . T(y, z)")]
    nested_terms = compose(stage1b, stage2b)
    print("\nexistentials in both stages:")
    print("  ", nested_terms)
    print("  plain:", nested_terms.is_plain(), "(nested Skolem terms)")


if __name__ == "__main__":
    main()
