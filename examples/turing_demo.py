"""The Theorem 5.1 gadget: simulating a Turing machine with a plain SO tgd.

Builds the reduction for a halting and a looping machine and prints the
Figure 8 enumeration statistics: the size of the f-block connected to the
origin null f(e0, e0) as the successor relation grows.  Halting machine ->
the block plateaus (bounded f-block size); looping machine -> it grows
quadratically (unbounded), with f-degree staying below a constant -- which by
Theorem 4.12 also certifies non-equivalence to any nested GLAV mapping
(Theorem 5.2).

Run with:  python examples/turing_demo.py
"""

from repro.engine.chase import chase_so_tgd
from repro.engine.gaifman import fblock_degree
from repro.turing import build_reduction, enumeration_chain_length, run_source_instance
from repro.turing.machine import halting_machine, looping_machine


def demo(name, machine, lengths) -> None:
    reduction = build_reduction(machine)
    print(f"\n=== {name} ===")
    print(f"gadget: plain SO tgd with {len(reduction.so_tgd.clauses)} clauses, "
          f"key dependency: {reduction.key_dependency}")
    print(f"{'n':>4} {'|I|':>6} {'|J|':>6} {'origin chain':>13} {'f-degree':>9}")
    for n in lengths:
        source = run_source_instance(machine, "", max_steps=n, length=n)
        target = chase_so_tgd(source, reduction.so_tgd)
        chain = enumeration_chain_length(reduction, target)
        degree = fblock_degree(target)
        print(f"{n:>4} {len(source):>6} {len(target):>6} {chain:>13} {degree:>9}")


def main() -> None:
    print("Theorem 5.1: a plain SO tgd + one key dependency simulate a TM.")
    print("The origin-connected f-block is bounded iff the machine halts.")

    demo("halting machine (3 steps)", halting_machine(3), [4, 6, 8, 10, 12])
    demo("looping machine", looping_machine(), [4, 6, 8, 10, 12])

    print(
        "\nreading: the halting column plateaus -- its f-block size is bounded,"
        "\nso by Theorem 4.1 the gadget is equivalent to a GLAV mapping."
        "\nThe looping column grows quadratically (the Figure 8 triangle):"
        "\nunbounded f-block size with bounded f-degree, so the gadget is"
        "\nequivalent neither to a GLAV mapping nor (Theorem 4.12) to any"
        "\nnested GLAV mapping.  Deciding which case holds decides halting."
    )


if __name__ == "__main__":
    main()
