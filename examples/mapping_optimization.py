"""Schema-mapping optimization with the IMPLIES procedure.

Implication being decidable for nested tgds (Theorem 3.1) enables classic
mapping-management tasks: removing redundant dependencies, checking that a
hand-optimized mapping is faithful, and flattening a nested mapping to plain
GLAV when (and only when) that is possible (Theorem 4.2).

Run with:  python examples/mapping_optimization.py
"""

from repro import (
    UndecidedError,
    equivalent,
    implies,
    parse_egd,
    parse_nested_tgd,
    parse_tgd,
)
from repro.core.glav_equivalence import to_glav


def remove_redundant(dependencies):
    """Drop every dependency implied by the remaining ones (greedy)."""
    kept = list(dependencies)
    changed = True
    while changed:
        changed = False
        for index, dep in enumerate(kept):
            rest = kept[:index] + kept[index + 1:]
            if rest and implies(rest, dep):
                kept = rest
                changed = True
                break
    return kept


def main() -> None:
    # A mapping that grew organically: several dependencies are subsumed.
    dependencies = [
        parse_tgd("Emp(e, d) -> exists w . Works(e, w)", name="weak"),
        parse_tgd("Emp(e, d) -> Works(e, d)", name="strong"),
        parse_nested_tgd(
            "Dept(d) -> exists m . (Head(d, m) & (Emp(e, d) -> Boss(e, m)))",
            name="nested_head",
        ),
        parse_tgd("Dept(d) -> exists m . Head(d, m)", name="weak_head"),
        parse_tgd("Dept(d) & Emp(e, d) -> exists m . (Head(d, m) & Boss(e, m))",
                  name="one_emp_unfolding"),
    ]
    print("original mapping:", len(dependencies), "dependencies")
    for dep in dependencies:
        print("  ", dep)

    minimized = remove_redundant(dependencies)
    print("\nafter redundancy removal:", len(minimized), "dependencies")
    for dep in minimized:
        print("  ", dep)
    assert equivalent(minimized, dependencies)
    print("equivalent to the original:", True)

    # ------------------------------------------------------------------
    # Flattening: can the optimized mapping be expressed in plain GLAV?
    # ------------------------------------------------------------------
    print("\ntrying to flatten to GLAV ...")
    try:
        to_glav(minimized)
    except UndecidedError as exc:
        print("  not GLAV-expressible:", exc)

    # With a key constraint on Emp (each employee in one department), the
    # correlation cannot be observed on legal sources either... but here the
    # blow-up is per-department, so the key on Emp does not help.  A key on
    # Dept membership direction would.  Show a flattenable variant instead:
    flattenable = parse_nested_tgd(
        "Dept(d) -> exists m . (Head(d, m) & (Mgr(d, e) -> Boss(e, m)))"
    )
    egd = parse_egd("Mgr(d, e) & Mgr(d, ep) -> e = ep")
    print("\nvariant with at most one manager per department (source egd):")
    glav = to_glav([flattenable], source_egds=[egd])
    print("  equivalent GLAV mapping (relative to the egd):")
    for tgd in glav:
        print("   ", tgd)
    assert equivalent(glav, [flattenable], source_egds=[egd])


if __name__ == "__main__":
    main()
