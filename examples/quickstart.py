"""Quickstart: nested tgds, the chase, cores, and the IMPLIES procedure.

Run with:  python examples/quickstart.py
"""

from repro import (
    SchemaMapping,
    compute_core,
    equivalent,
    implies,
    implies_tgd,
    parse_instance,
    parse_nested_tgd,
    parse_tgd,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A nested tgd (the paper's running example) and a source instance.
    # ------------------------------------------------------------------
    sigma = parse_nested_tgd(
        "S(x1, x2) -> exists y . (R(y, x2) & (S(x1, x3) -> R(y, x3)))"
    )
    print("nested tgd sigma:")
    print(" ", sigma)

    source = parse_instance("S(a, b), S(a, c)")
    print("\nsource instance:", source)

    # ------------------------------------------------------------------
    # 2. Chase it: the canonical universal solution.
    # ------------------------------------------------------------------
    mapping = SchemaMapping([sigma])
    solution = mapping.chase(source)
    print("\nchase(I, sigma):")
    for fact in sorted(solution, key=repr):
        print("  ", fact)

    # The two chase trees (roots (a,b) and (a,c)) produce isomorphic blocks,
    # so the core keeps only one of them.
    core_solution = compute_core(solution)
    print("\ncore of the universal solution:")
    for fact in sorted(core_solution, key=repr):
        print("  ", fact)

    # ------------------------------------------------------------------
    # 3. Reason about implication (Theorem 3.1: this is decidable).
    # ------------------------------------------------------------------
    flattening = parse_tgd(
        "S(x1, x2) & S(x1, x3) -> exists y . (R(y, x2) & R(y, x3))"
    )
    print("\nsigma implies its 2-unfolding:", implies([sigma], flattening))
    print("the 2-unfolding implies sigma:", implies([flattening], sigma))

    result = implies_tgd([flattening], sigma)
    print("refuting pattern:", result.failing_pattern)
    print("counterexample source:", result.counterexample_source)

    # ------------------------------------------------------------------
    # 4. Logical equivalence (Corollary 3.11).
    # ------------------------------------------------------------------
    reordered = parse_nested_tgd(
        "S(x1, x2) -> exists y . ((S(x1, x3) -> R(y, x3)) & R(y, x2))"
    )
    print("\nsigma equivalent to its reordering:", equivalent([sigma], [reordered]))


if __name__ == "__main__":
    main()
