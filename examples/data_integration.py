"""Data integration: certain answers over nested GLAV mappings.

The payoff of nested mappings for query answering: correlations expressed by
shared existentials make joins *certain* that flat mappings cannot certify.
This example integrates two hospital sources into a mediated schema and
compares certain answers under a nested mapping and its naive flattening.

Run with:  python examples/data_integration.py
"""

from repro import parse_instance, parse_nested_tgd, parse_tgd
from repro.mappings import SchemaMapping
from repro.queries import certain_answers, parse_query


def main() -> None:
    # Source 1: admissions; Source 2: lab results keyed by patient.
    source = parse_instance(
        "Admitted(p1, cardiology), Admitted(p2, oncology), "
        "Lab(p1, troponin), Lab(p1, ecg), Lab(p2, biopsy)"
    )
    print("source:", source)

    # Mediated target: Case(caseid, ward), Finding(caseid, test).
    # The nested mapping creates one case per admission and attaches all of
    # the patient's lab results to THAT case.
    nested = parse_nested_tgd(
        "Admitted(p, w) -> exists c . (Case(c, w) & (Lab(p, t) -> Finding(c, t)))",
        name="nested_integration",
    )
    flat = [
        parse_tgd("Admitted(p, w) -> exists c . Case(c, w)"),
        parse_tgd("Admitted(p, w) & Lab(p, t) -> exists c . (Case(c, w) & Finding(c, t))"),
    ]

    queries = [
        ("wards with any case", "q(w) :- Case(c, w)"),
        ("ward of each finding", "q(w, t) :- Case(c, w) & Finding(c, t)"),
        ("co-located findings", "q(t1, t2) :- Finding(c, t1) & Finding(c, t2)"),
    ]

    for title, text in queries:
        query = parse_query(text)
        nested_answers = certain_answers(query, source, [nested])
        flat_answers = certain_answers(query, source, flat)
        print(f"\n{title}:  {query}")
        print("  certain under nested mapping:",
              sorted(tuple(repr(v) for v in t) for t in nested_answers))
        print("  certain under flat mapping:  ",
              sorted(tuple(repr(v) for v in t) for t in flat_answers))

    print(
        "\nreading: the first two queries agree, but the cross-join through"
        "\nthe case id separates the mappings: only the nested mapping makes"
        "\nit certain that troponin and ecg belong to the SAME case, because"
        "\nthe flat mapping re-invents a case null per lab result and cannot"
        "\ncertify the correlation."
    )

    # Sanity: the two mappings really are inequivalent, and decidably so.
    from repro import implies

    print("\nnested implies flat:", implies([nested], flat))
    print("flat implies nested:", implies(flat, [nested]))


if __name__ == "__main__":
    main()
