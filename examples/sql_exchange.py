"""Clio's promise, executed: a nested GLAV mapping compiled to SQL.

The paper's introduction recalls why Clio adopted nested GLAV mappings:
first-order specifications "give rise to transformations that ... can be
implemented using SQL queries".  This example compiles the customers-and-
orders nested mapping to INSERT ... SELECT statements, runs them on an
in-memory SQLite database, and checks that the result is exactly the chase.

Run with:  python examples/sql_exchange.py
"""

from repro import chase, parse_instance, parse_nested_tgd
from repro.export.sql import (
    compile_mapping_to_sql,
    execute_exchange,
    render_instance_values,
    schema_ddl,
)


def main() -> None:
    nested = parse_nested_tgd(
        "Customer(c, n) -> exists y . "
        "(Account(y, n) & (Ord(c, i) -> Purchase(y, i)))"
    )
    print("mapping:", nested)

    print("\ntarget DDL:")
    for statement in schema_ddl(nested.target_schema()):
        print("  ", statement)

    print("\ncompiled transformation:")
    for statement in compile_mapping_to_sql([nested]):
        print("  ", statement)

    source = parse_instance(
        "Customer(c1, alice), Customer(c2, bob), "
        "Ord(c1, book), Ord(c1, pen), Ord(c2, ink)"
    )
    print("\nsource:", source)

    result = execute_exchange(source, [nested])
    print("\nSQLite result:")
    for fact in sorted(result, key=repr):
        print("  ", fact)

    expected = render_instance_values(chase(source, [nested]))
    print(
        "\nagrees with the oblivious chase (up to null labels):",
        result.isomorphic(expected),
    )
    print(
        "\nreading: the Skolem term became a string-concatenation expression,"
        "\nso alice's account key is the SAME generated value in her Account"
        "\nrow and in both of her Purchase rows -- the correlation the nested"
        "\nmapping was designed to preserve, now in plain SQL."
    )


if __name__ == "__main__":
    main()
