"""Termination hierarchy tour: weak < joint < super-weak < MFA < stratified.

One dependency set per rung of the chase-termination hierarchy, each refuting
every narrower rung -- and each run *unbounded* to a fixpoint by the engine,
because `fixpoint_chase` consults the hierarchy instead of the bare
weak-acyclicity test.  A diverging set shows the other side of the gate: no
rung certifies it, so the unbounded chase is refused with lint code TD001.

The tour then crosses into the decidability frontier of
``repro.analysis.frontier``:

- a **PTIME-tier** set that is not weakly acyclic, whose per-relation degree
  witnesses certify a polynomial chase ("Chase Termination Beyond Polynomial
  Time", arXiv:2403.16712);
- a **triangularly guarded** set whose chase diverges but whose BCQ
  reasoning is decidable anyway (Asuncion & Zhang, arXiv:1804.05997);
- a **stratified-MFA** set the monolithic MFA budget refuses (TD001) that
  the per-stratum rung certifies, letting the engine run it unbounded.

Run with:  PYTHONPATH=src python examples/termination_hierarchy.py
"""

from repro.analysis.acyclicity import classify_termination
from repro.analysis.cost import chase_cost
from repro.analysis.frontier import frontier_report
from repro.analysis.termination import termination_report
from repro.engine.fixpoint_chase import fixpoint_chase
from repro.errors import ChaseError
from repro.logic.parser import parse_instance, parse_tgd

# Weakly acyclic: the position graph has no cycle through a special edge.
WEAKLY_ACYCLIC = [parse_tgd("P(x,y) -> Q(x,y)")]

# Jointly but not weakly acyclic: the special edge E.1 => E.1 puts a cycle in
# the position graph, but a null at E.1 never reaches *both* body positions
# of y, so its Mov set cannot re-feed the existential.
JOINTLY_ACYCLIC = [parse_tgd("E(x,y) & E(y,x) -> exists z . E(y,z)")]

# Super-weakly but not jointly acyclic: position sets see a cycle f -> h -> f,
# but place-level unification shows R(f(x), g(x)) can never match the body
# atom R(u,u) -- the trigger cannot actually fire.
SUPER_WEAKLY_ACYCLIC = [
    parse_tgd("S(x) -> exists y, z . R(y,z) & R(z,y)"),
    parse_tgd("R(u,u) -> exists w . S(w)"),
]

# Certified only by MFA: B() guards the second rule, and no rule ever derives
# B of a null, so the critical-instance chase saturates at depth 2 -- a guard
# no place-based movement analysis can see.
MODEL_FAITHFUL = [
    parse_tgd("A(x) -> exists y . L(x,y)"),
    parse_tgd("L(x,y) & B(y) -> exists w . A(w)"),
]

# No rung certifies this classic: the critical chase derives f_z nested below
# itself, and indeed the chase diverges on any nonempty instance.  Kept out
# of a parse_tgd literal so corpus scanners do not lint it as a regression.
DIVERGING_TEXT = "E(x,y) -> exists z . E(y,z)"

# PTIME tier without weak acyclicity: jointly acyclic (so certified), and the
# per-relation degree program of arXiv:2403.16712 assigns E and W small
# polynomial degrees -- the chase output is polynomial even though the
# position graph has a special cycle.
PTIME_NOT_WA = [
    parse_tgd("E(x,y) & E(y,x) -> exists z . E(y,z)"),
    parse_tgd("E(x,y) -> exists u . W(y,u)"),
]

# Triangularly guarded (arXiv:1804.05997) but diverging: the frontier pairs
# {y}x{} of each head atom all share a body atom, so BCQ reasoning over the
# set is decidable -- yet no termination rung admits it (the chase builds an
# infinite R-spiral).  Decidability of reasoning and termination of the
# chase are independent axes.  Kept out of a parse_tgd literal like the
# diverging set above, since it deliberately carries a TD001 error.
TRIANGULAR_TEXT = "R(x,y) -> exists z . R(y,z) & R(z,x)"

INSTANCES = {
    "weak": "P(a,b)",
    "joint": "E(a,b), E(b,a)",
    "super-weak": "S(a)",
    "mfa": "A(a), B(b)",
}


def show(label: str, dependencies, instance_text: str) -> None:
    verdict = classify_termination(dependencies)
    weak = termination_report(dependencies)
    cost = chase_cost(dependencies, verdict=verdict)
    print(f"== {label}")
    for dep in dependencies:
        print(f"   {dep}")
    print(f"   weakly acyclic:    {weak.weakly_acyclic}")
    print(f"   hierarchy verdict: {verdict.cls.value} (depth bound {verdict.depth_bound})")
    print(f"   chase-size degree: {cost.degree}")
    result = fixpoint_chase(parse_instance(instance_text), dependencies)
    print(
        f"   unbounded chase:   fixpoint in {result.rounds} round(s), "
        f"{len(result.instance)} facts, certified by {result.termination_class.value}"
    )
    print()


def main() -> None:
    show("weakly acyclic", WEAKLY_ACYCLIC, INSTANCES["weak"])
    show("jointly acyclic (not weakly)", JOINTLY_ACYCLIC, INSTANCES["joint"])
    show("super-weakly acyclic (not jointly)", SUPER_WEAKLY_ACYCLIC, INSTANCES["super-weak"])
    show("model-faithful acyclic (not super-weakly)", MODEL_FAITHFUL, INSTANCES["mfa"])

    from repro.workloads.families import (
        stratified_chain_instance,
        stratified_chain_tgds,
    )

    stratified = stratified_chain_tgds(40)
    print("== stratified MFA (monolithic MFA budget exhausted)")
    print(f"   {len(stratified)} dependencies: MFA gadget bridged into a 40-step chain")
    verdict = classify_termination(stratified)
    print(
        f"   hierarchy verdict: {verdict.cls.value} "
        f"({verdict.strata_count} strata, depth bound {verdict.depth_bound})"
    )
    result = fixpoint_chase(stratified_chain_instance(3), stratified)
    print(
        f"   unbounded chase:   fixpoint in {result.rounds} round(s), "
        f"{len(result.instance)} facts, certified by {result.termination_class.value}"
    )
    print()

    print("== PTIME tier (not weakly acyclic)")
    for dep in PTIME_NOT_WA:
        print(f"   {dep}")
    report = frontier_report(PTIME_NOT_WA)
    degrees = dict(report.tier.relation_degrees)
    print(f"   hierarchy verdict: {report.termination.cls.value}")
    print(f"   complexity tier:   {report.tier.tier.value} (degrees {degrees})")
    result = fixpoint_chase(parse_instance("E(a,b), E(b,a)"), PTIME_NOT_WA)
    print(
        f"   unbounded chase:   fixpoint in {result.rounds} round(s), "
        f"{len(result.instance)} facts"
    )
    print()

    triangular = [parse_tgd(TRIANGULAR_TEXT)]
    print("== triangularly guarded (diverging chase, decidable reasoning)")
    print(f"   {triangular[0]}")
    report = frontier_report(triangular)
    print(f"   hierarchy verdict: {report.termination.cls.value}")
    print(f"   triangular guard:  {report.triangular.guarded}")
    print(f"   decidable BCQ reasoning: {report.decidable_reasoning}")
    try:
        fixpoint_chase(parse_instance("R(a,b)"), triangular)
    except ChaseError as exc:
        print(f"   unbounded chase refused: {str(exc).splitlines()[0]}")
    bounded = fixpoint_chase(parse_instance("R(a,b)"), triangular, max_rounds=3)
    print(f"   bounded chase (3 rounds): {len(bounded.instance)} facts, no fixpoint")
    print()

    diverging = [parse_tgd(DIVERGING_TEXT)]
    print("== not guaranteed (diverging)")
    print(f"   {diverging[0]}")
    verdict = classify_termination(diverging)
    print(f"   hierarchy verdict: {verdict.cls.value}")
    print(f"   MFA witness term:  {verdict.mfa_cyclic_term}")
    try:
        fixpoint_chase(parse_instance("E(a,b)"), diverging)
    except ChaseError as exc:
        print(f"   unbounded chase refused: {str(exc).splitlines()[0]}")
    bounded = fixpoint_chase(parse_instance("E(a,b)"), diverging, max_rounds=3)
    print(f"   bounded chase (3 rounds): {len(bounded.instance)} facts, no fixpoint")


if __name__ == "__main__":
    main()
