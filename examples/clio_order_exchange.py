"""Data exchange with nested mappings, Clio-style.

Nested GLAV mappings were introduced as the specification language of IBM's
Clio (references [10, 12] of the paper): compared with flat GLAV mappings
they give specifications that are more compact and "reflect more accurately
the correlations between data".  This example makes both advantages concrete
on a customers-and-orders exchange.

Source schema:   Customer(cid, name)        Order(cid, item)
Target schema:   Account(acc, name)         Purchase(acc, item)

Intent: each customer gets ONE account, and all their orders hang off that
same account.

Run with:  python examples/clio_order_exchange.py
"""

from repro import (
    SchemaMapping,
    compute_core,
    fact_blocks,
    implies,
    parse_instance,
    parse_nested_tgd,
    parse_tgd,
)


def main() -> None:
    source = parse_instance(
        "Customer(c1, alice), Customer(c2, bob), "
        "Order(c1, book), Order(c1, pen), Order(c2, ink)"
    )
    print("source:", source)

    # ------------------------------------------------------------------
    # The nested mapping: one dependency, correlation built in.  The
    # account null y is created once per customer and shared by all of
    # that customer's purchases.
    # ------------------------------------------------------------------
    nested = parse_nested_tgd(
        "Customer(c, n) -> exists y . "
        "(Account(y, n) & (Order(c, i) -> Purchase(y, i)))",
        name="clio_nested",
    )
    nested_mapping = SchemaMapping([nested])

    # ------------------------------------------------------------------
    # The naive flat translation: two GLAV dependencies.  The purchase
    # rule must re-invent an account, losing the correlation.
    # ------------------------------------------------------------------
    flat = [
        parse_tgd("Customer(c, n) -> exists y . Account(y, n)", name="accounts"),
        parse_tgd(
            "Customer(c, n) & Order(c, i) -> exists y . (Account(y, n) & Purchase(y, i))",
            name="purchases",
        ),
    ]
    flat_mapping = SchemaMapping(flat)

    print("\n--- nested mapping: core universal solution ---")
    nested_core = nested_mapping.core_solution(source)
    for fact in sorted(nested_core, key=repr):
        print("  ", fact)

    print("\n--- flat mapping: core universal solution ---")
    flat_core = flat_mapping.core_solution(source)
    for fact in sorted(flat_core, key=repr):
        print("  ", fact)

    # ------------------------------------------------------------------
    # The correlation difference, made visible through f-blocks: under the
    # nested mapping alice's account and both her purchases share one null
    # (one f-block); under the flat mapping each purchase re-creates an
    # account, so alice's data is split across blocks.
    # ------------------------------------------------------------------
    print("\nf-blocks (nested):", sorted(len(b) for b in fact_blocks(nested_core)))
    print("f-blocks (flat):  ", sorted(len(b) for b in fact_blocks(flat_core)))

    # ------------------------------------------------------------------
    # Reasoning (Theorem 3.1): the nested mapping strictly implies the flat
    # one -- every flat consequence holds, but not vice versa.
    # ------------------------------------------------------------------
    print("\nnested implies flat:", implies([nested], flat))
    print("flat implies nested:", implies(flat, [nested]))

    # And (Theorem 4.2) we can *decide* that no finite set of s-t tgds can
    # ever express the nested mapping:
    from repro import is_equivalent_to_glav

    print(
        "nested mapping expressible as a GLAV mapping:",
        is_equivalent_to_glav([nested]),
    )


if __name__ == "__main__":
    main()
