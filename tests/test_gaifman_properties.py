"""Hypothesis invariants for the Gaifman graph layer."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.engine.gaifman import (
    fact_block_size,
    fact_blocks,
    fact_graph,
    fblock_degree,
    full_fact_graph,
    is_connected,
    null_graph,
    null_path_length,
)
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.values import Constant, Null


CONSTANTS = [Constant(c) for c in "ab"]
NULLS = [Null(f"n{i}") for i in range(4)]

values = st.sampled_from(CONSTANTS + NULLS)
facts = st.builds(
    Atom, st.sampled_from(["R", "P"]), st.tuples(values, values)
)
instances = st.lists(facts, min_size=0, max_size=8).map(Instance)


class TestFactGraphInvariants:
    @settings(max_examples=80, deadline=None)
    @given(instance=instances)
    def test_blocks_partition_facts(self, instance):
        blocks = list(fact_blocks(instance))
        union = set()
        total = 0
        for block in blocks:
            total += len(block)
            union |= set(block)
        assert union == set(instance.facts)
        assert total == len(instance)

    @settings(max_examples=80, deadline=None)
    @given(instance=instances)
    def test_block_size_bounds(self, instance):
        size = fact_block_size(instance)
        assert 0 <= size <= len(instance)
        if len(instance):
            assert size >= 1

    @settings(max_examples=80, deadline=None)
    @given(instance=instances)
    def test_star_and_full_graph_same_components(self, instance):
        import networkx as nx

        star = fact_graph(instance)
        full = full_fact_graph(instance)
        star_components = {frozenset(c) for c in nx.connected_components(star)}
        full_components = {frozenset(c) for c in nx.connected_components(full)}
        assert star_components == full_components

    @settings(max_examples=80, deadline=None)
    @given(instance=instances)
    def test_degree_bounded_by_block_size(self, instance):
        assert fblock_degree(instance) <= max(fact_block_size(instance) - 1, 0)

    @settings(max_examples=50, deadline=None)
    @given(instance=instances)
    def test_single_block_iff_connected(self, instance):
        blocks = list(fact_blocks(instance))
        assert is_connected(instance) == (len(blocks) <= 1)


class TestNullGraphInvariants:
    @settings(max_examples=80, deadline=None)
    @given(instance=instances)
    def test_nodes_are_exactly_the_nulls(self, instance):
        graph = null_graph(instance)
        assert set(graph.nodes) == set(instance.nulls())

    @settings(max_examples=80, deadline=None)
    @given(instance=instances)
    def test_path_length_bounds(self, instance):
        length = null_path_length(instance)
        assert 0 <= length < max(len(instance.nulls()), 1)

    @settings(max_examples=50, deadline=None)
    @given(instance=instances)
    def test_path_length_monotone_under_union(self, instance):
        extra = Instance([Atom("R", (NULLS[0], NULLS[1]))])
        assert null_path_length(instance.union(extra)) >= null_path_length(instance)
