"""Tests for core computation."""

from repro.engine.core_instance import core, is_core
from repro.engine.homomorphism import homomorphically_equivalent
from repro.logic.parser import parse_instance


class TestFolding:
    def test_null_folds_into_constant_fact(self):
        assert core(parse_instance("R(a,_x), R(a,b)")) == parse_instance("R(a,b)")

    def test_parallel_nulls_fold_together(self):
        result = core(parse_instance("R(a,_x), R(a,_y)"))
        assert len(result) == 1

    def test_ground_instance_is_its_own_core(self):
        inst = parse_instance("R(a,b), R(b,c)")
        assert core(inst) == inst

    def test_empty_instance(self):
        inst = parse_instance("")
        assert core(inst) == inst


class TestCoreProperties:
    def test_core_is_hom_equivalent_to_input(self):
        inst = parse_instance("R(a,_x), R(_x,_y), R(a,b), R(b,c)")
        assert homomorphically_equivalent(core(inst), inst)

    def test_core_is_subinstance(self):
        inst = parse_instance("R(a,_x), R(_x,_y), R(a,b)")
        result = core(inst)
        assert result <= inst

    def test_core_is_idempotent(self):
        inst = parse_instance("R(a,_x), R(_x,_y), R(a,b), R(b,c)")
        once = core(inst)
        assert core(once) == once
        assert is_core(once)


class TestSymmetricStructures:
    """Automorphisms must not fool the core computation (the triangle trap)."""

    def test_undirected_triangle_is_a_core(self):
        triangle = parse_instance(
            "R(_1,_2), R(_2,_1), R(_2,_3), R(_3,_2), R(_3,_1), R(_1,_3)"
        )
        assert core(triangle) == triangle

    def test_odd_cycle_is_a_core(self):
        c5 = parse_instance(
            "R(_1,_2), R(_2,_1), R(_2,_3), R(_3,_2), R(_3,_4), R(_4,_3), "
            "R(_4,_5), R(_5,_4), R(_5,_1), R(_1,_5)"
        )
        assert core(c5) == c5

    def test_even_cycle_folds_to_edge(self):
        c4 = parse_instance(
            "R(_1,_2), R(_2,_1), R(_2,_3), R(_3,_2), "
            "R(_3,_4), R(_4,_3), R(_4,_1), R(_1,_4)"
        )
        assert len(core(c4)) == 2

    def test_path_with_pendant_folds(self):
        # _y -> _z can fold onto _x -> _y? directed path of nulls is a core
        path = parse_instance("R(_x,_y), R(_y,_z)")
        assert core(path) == path


class TestBlocksIndependent:
    def test_distinct_blocks_folded_independently(self):
        inst = parse_instance("R(a,_x), R(a,b), T(c,_y), T(c,d)")
        assert core(inst) == parse_instance("R(a,b), T(c,d)")

    def test_isomorphic_blocks_do_not_collapse_across_constants(self):
        # blocks anchored at different constants both survive
        inst = parse_instance("R(a,_x), R(b,_y)")
        assert len(core(inst)) == 2
