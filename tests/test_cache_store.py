"""The persistent SQLite store: schema versioning, LRU eviction, corruption
recovery, configuration resolution, and the maintenance operations behind
``repro cache``.

The conftest hook force-disables persistence before every test, so each test
opts back in explicitly with ``configure(tmp_path)`` (or the env variable)
and never sees another test's store.
"""

from __future__ import annotations

import os
import sqlite3

import repro.cache as cache
from repro.cache import store as store_mod
from repro.cache.store import (
    DiskStore,
    ENV_CACHE_DIR,
    ENV_CACHE_SPACES,
    SCHEMA_VERSION,
    STORE_FILENAME,
    configure,
    get_store,
)


class TestDiskStoreBasics:
    def test_put_get_roundtrip(self, tmp_path):
        store = DiskStore(tmp_path)
        assert store.get("chase", "k1") is None
        store.put("chase", "k1", b"payload-1")
        assert store.get("chase", "k1") == b"payload-1"
        store.close()

    def test_spaces_are_isolated(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("chase", "k", b"chase-value")
        store.put("fold", "k", b"fold-value")
        assert store.get("chase", "k") == b"chase-value"
        assert store.get("fold", "k") == b"fold-value"
        store.close()

    def test_disabled_space_is_a_noop(self, tmp_path):
        store = DiskStore(tmp_path, spaces=frozenset({"chase"}))
        assert not store.enabled("fold")
        store.put("fold", "k", b"v")
        assert store.get("fold", "k") is None
        assert store.entry_counts() == {}
        store.close()

    def test_overwrite_replaces_payload(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("chase", "k", b"old")
        store.put("chase", "k", b"new")
        assert store.get("chase", "k") == b"new"
        assert store.entry_counts() == {"chase": 1}
        store.close()

    def test_persists_across_reopen(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("implies", "verdict", b"holds")
        store.close()
        reopened = DiskStore(tmp_path)
        assert reopened.get("implies", "verdict") == b"holds"
        reopened.close()

    def test_keys_sorted_and_counts(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("fold", "b", b"2")
        store.put("chase", "a", b"1")
        store.put("fold", "a", b"3")
        assert store.keys() == [("chase", "a"), ("fold", "a"), ("fold", "b")]
        assert store.entry_counts() == {"chase": 1, "fold": 2}
        store.close()

    def test_lifetime_counters_survive_reopen(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("chase", "k", b"v")
        store.get("chase", "k")
        store.get("chase", "absent")
        store.close()
        reopened = DiskStore(tmp_path)
        counters = reopened.counters()
        assert counters["hits"] == 1
        assert counters["misses"] == 1
        reopened.close()

    def test_stats_shape(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("chase", "k", b"v")
        stats = store.stats()
        assert stats["enabled"] is True
        assert stats["schema_version"] == SCHEMA_VERSION
        assert stats["entries"] == {"chase": 1}
        assert stats["spaces"] == ["chase", "contain", "fold", "implies"]
        assert str(stats["path"]).endswith(STORE_FILENAME)
        assert isinstance(stats["size_bytes"], int)
        store.close()


class TestEviction:
    def test_lru_eviction_past_cap(self, tmp_path):
        store = DiskStore(tmp_path, limits={"chase": 3})
        for i in range(5):
            store.put("chase", f"k{i}", b"v")
        assert store.entry_counts() == {"chase": 3}
        # the two oldest-stamped entries are gone
        assert store.get("chase", "k0") is None
        assert store.get("chase", "k1") is None
        assert store.get("chase", "k4") == b"v"
        store.close()

    def test_get_refreshes_lru_stamp(self, tmp_path):
        store = DiskStore(tmp_path, limits={"chase": 3})
        for i in range(3):
            store.put("chase", f"k{i}", b"v")
        store.get("chase", "k0")  # k0 becomes most-recent; k1 is now LRU
        store.put("chase", "k3", b"v")
        assert store.get("chase", "k0") == b"v"
        assert store.get("chase", "k1") is None
        store.close()

    def test_eviction_is_per_space(self, tmp_path):
        store = DiskStore(tmp_path, limits={"chase": 2, "fold": 100})
        for i in range(4):
            store.put("chase", f"c{i}", b"v")
            store.put("fold", f"f{i}", b"v")
        assert store.entry_counts() == {"chase": 2, "fold": 4}
        store.close()


class TestInvalidation:
    def test_schema_version_mismatch_drops_entries(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("chase", "k", b"v")
        store.close()
        connection = sqlite3.connect(tmp_path / STORE_FILENAME)
        connection.execute(
            "UPDATE meta SET value = '999' WHERE key = 'schema_version'"
        )
        connection.commit()
        connection.close()
        reopened = DiskStore(tmp_path)
        assert reopened.get("chase", "k") is None
        assert reopened.entry_counts() == {}
        reopened.close()

    def test_corrupt_database_file_is_recreated(self, tmp_path):
        path = tmp_path / STORE_FILENAME
        path.write_bytes(b"this is not a sqlite database at all" * 100)
        store = DiskStore(tmp_path)
        store.put("chase", "k", b"v")
        assert store.get("chase", "k") == b"v"
        store.close()

    def test_corrupt_payload_row_degrades_to_miss(self, tmp_path):
        configure(tmp_path)
        store = get_store()
        assert store is not None
        # a raw garbage blob that is not a pickle
        store.put("chase", "bad-key", b"\x00garbage\xff")
        assert cache.disk_get("chase", "bad-key") is None
        # the corrupt row was deleted so the caller's overwrite sticks
        cache.disk_put("chase", "bad-key", ("recovered",))
        assert cache.disk_get("chase", "bad-key") == ("recovered",)

    def test_clear_drops_entries_and_counters(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("chase", "k", b"v")
        store.get("chase", "k")
        store.clear()
        assert store.entry_counts() == {}
        assert store.counters() == {"hits": 0, "misses": 0}
        store.close()

    def test_vacuum_keeps_entries(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("chase", "k", b"v" * 1000)
        store.vacuum()
        assert store.get("chase", "k") == b"v" * 1000
        store.close()


class TestConfiguration:
    def test_disabled_by_default(self):
        assert get_store() is None
        assert cache.cache_stats() == {"enabled": False, "path": None}

    def test_configure_enables_and_disables(self, tmp_path):
        configure(tmp_path)
        store = get_store()
        assert store is not None
        assert store.directory == tmp_path
        configure(None)
        assert get_store() is None

    def test_env_dir_resolution(self, tmp_path):
        os.environ[ENV_CACHE_DIR] = str(tmp_path)
        configure()  # revert to env resolution (conftest forced None)
        try:
            store = get_store()
            assert store is not None
            assert str(store.directory) == str(tmp_path)
        finally:
            del os.environ[ENV_CACHE_DIR]
            configure(None)

    def test_configure_none_overrides_env(self, tmp_path):
        os.environ[ENV_CACHE_DIR] = str(tmp_path)
        try:
            configure(None)
            assert get_store() is None
        finally:
            del os.environ[ENV_CACHE_DIR]

    def test_env_spaces_restriction(self, tmp_path):
        os.environ[ENV_CACHE_DIR] = str(tmp_path)
        os.environ[ENV_CACHE_SPACES] = "chase,implies"
        configure()
        try:
            store = get_store()
            assert store is not None
            assert store.spaces == frozenset({"chase", "implies"})
            assert not store.enabled("fold")
        finally:
            del os.environ[ENV_CACHE_DIR]
            del os.environ[ENV_CACHE_SPACES]
            configure(None)

    def test_reconfigure_switches_directory(self, tmp_path):
        dir_a = tmp_path / "a"
        dir_b = tmp_path / "b"
        configure(dir_a)
        cache.disk_put("chase", "k", "in-a")
        configure(dir_b)
        assert cache.disk_get("chase", "k") is None
        cache.disk_put("chase", "k", "in-b")
        configure(dir_a)
        assert cache.disk_get("chase", "k") == "in-a"

    def test_unwritable_directory_degrades_to_disabled(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        configure(blocker / "sub")  # mkdir under a regular file fails
        assert get_store() is None


class TestFacade:
    def test_disk_roundtrip_pickles_values(self, tmp_path):
        configure(tmp_path)
        value = {"holds": True, "patterns": (1, 2, 3)}
        cache.disk_put("implies", "key", value)
        assert cache.disk_get("implies", "key") == value

    def test_disk_get_without_store_is_none(self):
        assert cache.disk_get("chase", "anything") is None

    def test_clear_all_caches_clears_disk(self, tmp_path):
        configure(tmp_path)
        cache.disk_put("chase", "k", "v")
        cache.clear_all_caches()
        assert cache.disk_get("chase", "k") is None

    def test_clear_all_caches_disk_false_keeps_store(self, tmp_path):
        configure(tmp_path)
        cache.disk_put("chase", "k", "v")
        cache.clear_all_caches(disk=False)
        assert cache.disk_get("chase", "k") == "v"

    def test_clear_all_caches_resets_memory_tiers(self):
        # exported at the package top level (the reset-asymmetry fix)
        import repro

        assert repro.clear_all_caches is cache.clear_all_caches
        repro.clear_all_caches()  # no store configured: must not raise

    def test_cache_stats_enabled(self, tmp_path):
        configure(tmp_path)
        cache.disk_put("fold", "k", "v")
        stats = cache.cache_stats()
        assert stats["enabled"] is True
        assert stats["entries"] == {"fold": 1}


class TestForkSafety:
    def test_reopen_after_fork(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("chase", "parent-key", b"parent-value")
        pid = os.fork()
        if pid == 0:  # child: the inherited connection must not be reused
            ok = store.get("chase", "parent-key") == b"parent-value"
            store.put("chase", "child-key", b"child-value")
            os._exit(0 if ok else 1)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0
        assert store.get("chase", "child-key") == b"child-value"
        store.close()


class TestByteStability:
    def test_identical_runs_produce_identical_keysets(self, tmp_path):
        """Two identical workloads into fresh stores agree on every key --
        the fingerprints are content-derived, not hash-seed-derived."""
        from repro import implies_tgd, parse_nested_tgd, parse_tgd

        def run(directory):
            configure(directory)
            cache.clear_all_caches(disk=False)
            tau = parse_nested_tgd("S1(x1) -> exists y . (S2(x2) -> R(x2, y))")
            good = parse_tgd("S1(x1) & S2(x2) -> R(x2, x1)")
            assert implies_tgd([good], tau).holds
            store = get_store()
            assert store is not None
            keys = store.keys()
            configure(None)
            return keys

        keys_a = run(tmp_path / "a")
        keys_b = run(tmp_path / "b")
        assert keys_a == keys_b
        assert len(keys_a) > 0

    def test_store_mod_exports(self):
        for name in store_mod.__all__:
            assert hasattr(store_mod, name)
