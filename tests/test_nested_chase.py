"""Tests for the recursive-triggering chase for nested tgds (Section 3)."""

from repro.core.patterns import Pattern
from repro.engine.nested_chase import chase_nested
from repro.logic.parser import parse_instance, parse_nested_tgd


class TestTriggeringStructure:
    def test_intro_example_facts(self, intro_nested):
        """S(a,b), S(a,c): root per (x1,x2) pair; each root triggers x3 twice."""
        forest = chase_nested(parse_instance("S(a,b), S(a,c)"), intro_nested)
        assert len(forest.trees) == 2
        J = forest.instance
        # per root y = f(a, x2): R(y, b) and R(y, c) -- 2 distinct nulls, 4 facts
        assert len(J.nulls()) == 2
        assert len(J) == 4

    def test_parent_child_links(self, intro_nested):
        forest = chase_nested(parse_instance("S(a,b)"), intro_nested)
        tree = forest.trees[0]
        children = tree.root.children
        assert len(children) == 1
        assert children[0].parent is tree.root
        assert list(children[0].ancestors()) == [tree.root]

    def test_input_assignment_extends_parent(self, sigma_star):
        source = parse_instance("S1(a), S3(a,b), S4(b,c)")
        forest = chase_nested(source, sigma_star)
        tree = forest.trees[0]
        triggering_4 = [t for t in tree.triggerings() if t.part_id == 4][0]
        parent_assignment = triggering_4.parent.assignment
        for var, value in parent_assignment.items():
            assert triggering_4.assignment[var] == value

    def test_rec_triggerings(self, sigma_star):
        source = parse_instance("S1(a), S3(a,b), S4(b,c)")
        forest = chase_nested(source, sigma_star)
        root = forest.trees[0].root
        assert {t.part_id for t in root.recursive_triggerings()} == {3, 4}


class TestNullDisjointness:
    def test_distinct_chase_trees_share_no_nulls(self, intro_nested):
        """The key underpinning of Theorem 3.1 (Section 3)."""
        forest = chase_nested(parse_instance("S(a,b), S(c,d)"), intro_nested)
        assert len(forest.trees) == 2
        null_sets = [
            {n for f in tree.facts() for n in f.nulls()} for tree in forest.trees
        ]
        assert not null_sets[0] & null_sets[1]

    def test_function_prefix_renames_nulls(self, intro_nested):
        left = chase_nested(parse_instance("S(a,b)"), intro_nested, function_prefix="l_")
        right = chase_nested(parse_instance("S(a,b)"), intro_nested, function_prefix="r_")
        left_nulls = left.instance.nulls()
        right_nulls = right.instance.nulls()
        assert not left_nulls & right_nulls


class TestPatterns:
    def test_chase_tree_pattern(self, intro_nested):
        forest = chase_nested(parse_instance("S(a,b), S(a,c)"), intro_nested)
        patterns = forest.patterns()
        # each root has two part-2 triggerings (x3 in {b, c})
        assert all(p == Pattern(1, (Pattern(2), Pattern(2))) for p in patterns)

    def test_example_34_realizability(self):
        """Example 3.4: a part whose body only uses ancestor variables can
        trigger at most once per parent triggering, so patterns with cloned
        children of that part are not realizable."""
        tgd = parse_nested_tgd("S1(x1) -> (S2(x1) -> T2(x1))")
        source = parse_instance("S1(a), S2(a)")
        forest = chase_nested(source, tgd)
        patterns = forest.patterns()
        assert patterns == [Pattern(1, (Pattern(2),))]

    def test_empty_source_empty_forest(self, intro_nested):
        forest = chase_nested(parse_instance(""), intro_nested)
        assert forest.trees == ()
        assert len(forest.instance) == 0


class TestAgreementWithSkolemizedChase:
    def test_nested_chase_equals_so_chase_modulo_renaming(self, sigma_star):
        from repro.engine.chase import chase_so_tgd

        source = parse_instance("S1(a), S2(b), S3(a,c), S4(c,d)")
        nested_result = chase_nested(source, sigma_star).instance
        so_result = chase_so_tgd(source, sigma_star.skolemize())
        assert nested_result.isomorphic(so_result)
