"""Shared fixtures: the paper's running dependencies and instances.

Also the cache-isolation hook: every test starts with every cache tier
cold (chase LRU, fold memo, intern traffic counters) and with disk
persistence force-disabled, so no test observes another test's warm state
and no test ever touches a developer's real ``REPRO_CACHE_DIR``.  Tests
that exercise persistence opt back in with ``repro.cache.configure(tmp)``
(the next test's setup re-disables it).  A plain pytest hook -- not an
autouse fixture -- so Hypothesis's function-scoped-fixture health check
stays quiet for ``@given`` tests.
"""

from __future__ import annotations

import os

import pytest

import repro.cache
from repro import (
    parse_egd,
    parse_instance,
    parse_nested_tgd,
    parse_so_tgd,
    parse_tgd,
)


def pytest_runtest_setup(item: pytest.Item) -> None:
    os.environ.pop("REPRO_CACHE_DIR", None)
    os.environ.pop("REPRO_CACHE_SPACES", None)
    repro.cache.configure(None)
    repro.cache.clear_all_caches()


@pytest.fixture
def sigma_star():
    """The four-part nested tgd (*) of Section 2 (labels sigma_1 .. sigma_4)."""
    return parse_nested_tgd(
        "S1(x1) -> exists y1 . ("
        "  (S2(x2) -> R2(y1, x2))"
        "  & (S3(x1, x3) -> R3(y1, x3) & (S4(x3, x4) -> exists y2 . R4(y2, x4)))"
        ")",
        name="sigma_star",
    )


@pytest.fixture
def intro_nested():
    """The introduction's nested tgd: S(x1,x2) -> exists y (R(y,x2) & (S(x1,x3) -> R(y,x3)))."""
    return parse_nested_tgd(
        "S(x1, x2) -> exists y . (R(y, x2) & (S(x1, x3) -> R(y, x3)))",
        name="intro",
    )


@pytest.fixture
def tau_310():
    """The nested tgd tau of Example 3.10."""
    return parse_nested_tgd(
        "S1(x1) -> exists y . (S2(x2) -> R(x2, y))", name="tau"
    )


@pytest.fixture
def tau_prime_310():
    """The s-t tgd tau' of Example 3.10 (does not imply tau)."""
    return parse_tgd("S2(x2) -> exists z . R(x2, z)", name="tau_prime")


@pytest.fixture
def tau_dprime_310():
    """The s-t tgd tau'' of Example 3.10 (implies tau)."""
    return parse_tgd("S1(x1) & S2(x2) -> R(x2, x1)", name="tau_dprime")


@pytest.fixture
def so_tgd_48():
    """The plain SO tgd of Example 4.8: S(x,y) -> R(f(x),f(y)) & R(f(y),f(x))."""
    return parse_so_tgd("S(x,y) -> R(f(x), f(y)) & R(f(y), f(x))", name="ex48")


@pytest.fixture
def so_tgd_413():
    """The plain SO tgd of Proposition 4.13: S(x,y) -> R(f(x),f(y))."""
    return parse_so_tgd("S(x,y) -> R(f(x), f(y))", name="prop413")


@pytest.fixture
def so_tgd_414():
    """The plain SO tgd of Example 4.14."""
    return parse_so_tgd("S(x,y) & Q(z) -> R(f(z,x), f(z,y), g(z))", name="ex414")


@pytest.fixture
def so_tgd_415():
    """The plain SO tgd of Example 4.15 (equivalent to a nested tgd)."""
    return parse_so_tgd("S(x,y) & Q(z) -> R(f(x,y,z), g(z), x)", name="ex415")


@pytest.fixture
def nested_415():
    """The nested tgd of Example 4.15 equivalent to the SO tgd above."""
    return parse_nested_tgd(
        "Q(z) -> exists u . (S(x,y) -> exists v . R(v, u, x))", name="nested415"
    )


@pytest.fixture
def sigma_53():
    """The nested tgd of Example 5.3."""
    return parse_nested_tgd(
        "Q(z) -> exists y . (P1(z, x1) & P2(z, x2) -> R(y, x1, x2))", name="ex53"
    )


@pytest.fixture
def egd_53():
    """The source egd of Example 5.3: P1 is functional in its first argument."""
    return parse_egd("P1(z, x1) & P1(z, xp) -> x1 = xp", name="ex53_egd")


@pytest.fixture
def small_source():
    return parse_instance("S(a, b), S(a, c)")
