"""Tests for conjunctive queries and certain answers."""

import pytest

from repro.errors import DependencyError, ParseError
from repro.logic.parser import parse_instance, parse_nested_tgd, parse_tgd
from repro.logic.values import Constant, Variable
from repro.mappings import SchemaMapping
from repro.queries import (
    ConjunctiveQuery,
    certain_answers,
    naive_evaluation,
    parse_query,
)
from repro.queries.certain import certain_answers_boolean


A, B, C = Constant("a"), Constant("b"), Constant("c")


class TestParsing:
    def test_parse_binary_query(self):
        q = parse_query("q(x, y) :- R(x, z) & S(z, y)")
        assert q.arity == 2
        assert len(q.body) == 2

    def test_boolean_query(self):
        q = parse_query("q() :- R(x, y)")
        assert q.is_boolean()

    def test_unsafe_query_rejected(self):
        with pytest.raises(DependencyError):
            parse_query("q(w) :- R(x, y)")

    def test_missing_separator_rejected(self):
        with pytest.raises(ParseError):
            parse_query("q(x) R(x, y)")

    def test_query_name_kept(self):
        assert parse_query("answers(x) :- R(x, x)").name == "answers"


class TestEvaluation:
    def test_projection(self):
        q = parse_query("q(x) :- R(x, y)")
        inst = parse_instance("R(a, b), R(a, c), R(b, c)")
        assert q.evaluate(inst) == {(A,), (B,)}

    def test_join(self):
        q = parse_query("q(x, z) :- R(x, y) & R(y, z)")
        inst = parse_instance("R(a, b), R(b, c)")
        assert q.evaluate(inst) == {(A, C)}

    def test_nulls_appear_in_raw_evaluation(self):
        q = parse_query("q(y) :- R(x, y)")
        inst = parse_instance("R(a, _n)")
        assert len(q.evaluate(inst)) == 1

    def test_naive_evaluation_drops_null_tuples(self):
        q = parse_query("q(y) :- R(x, y)")
        inst = parse_instance("R(a, _n), R(a, b)")
        assert naive_evaluation(q, inst) == {(B,)}

    def test_existential_variables(self):
        q = parse_query("q(x) :- R(x, y) & S(y)")
        assert q.existential_variables() == {Variable("y")}

    def test_answer_tuples_iterator(self):
        q = parse_query("q(x) :- R(x, y)")
        inst = parse_instance("R(a, b), R(b, c)")
        assert set(q.answer_tuples(inst)) == q.evaluate(inst)


class TestCertainAnswers:
    def test_constants_certain_nulls_not(self):
        q = parse_query("q(x, y) :- R(x, y)")
        mapping = [parse_tgd("S(u, v) -> R(u, v)"), parse_tgd("S(u, v) -> R(u, w)")]
        answers = certain_answers(q, parse_instance("S(a, b)"), mapping)
        assert answers == {(A, B)}  # R(a, w) has a null: not certain

    def test_join_through_shared_null_is_certain(self):
        """The shared existential of a nested tgd makes a join certain even
        though the witness value is unknown -- the Clio correlation effect."""
        nested = parse_nested_tgd(
            "Customer(c, n) -> exists y . (Account(y, n) & (Order(c, i) -> Purchase(y, i)))"
        )
        q = parse_query("q(n, i) :- Account(y, n) & Purchase(y, i)")
        source = parse_instance("Customer(c1, alice), Order(c1, book)")
        answers = certain_answers(q, source, [nested])
        assert answers == {(Constant("alice"), Constant("book"))}

    def test_flat_mapping_loses_the_join(self):
        """The naive flat translation cannot certify the same join."""
        flat = [
            parse_tgd("Customer(c, n) -> exists y . Account(y, n)"),
            parse_tgd("Customer(c, n) & Order(c, i) -> exists y . Purchase(y, i)"),
        ]
        q = parse_query("q(n, i) :- Account(y, n) & Purchase(y, i)")
        source = parse_instance("Customer(c1, alice), Order(c1, book)")
        assert certain_answers(q, source, flat) == set()

    def test_schema_mapping_accepted(self):
        q = parse_query("q(x) :- R(x, y)")
        mapping = SchemaMapping([parse_tgd("S(u, v) -> R(u, v)")])
        assert certain_answers(q, parse_instance("S(a, b)"), mapping) == {(A,)}

    def test_boolean_certain_answer(self):
        q = parse_query("q() :- R(x, y)")
        mapping = [parse_tgd("S(u) -> R(u, w)")]
        assert certain_answers_boolean(q, parse_instance("S(a)"), mapping)
        assert not certain_answers_boolean(q, parse_instance(""), mapping)

    def test_certain_answers_invariant_under_equivalent_mappings(self):
        """Logically equivalent mappings give the same certain answers."""
        nested = parse_nested_tgd("S1(x1) -> (S2(x2) -> T(x1, x2))")
        from repro.core.glav_equivalence import to_glav

        glav = to_glav([nested])
        q = parse_query("q(x, y) :- T(x, y)")
        for text in ["S1(a), S2(b)", "S1(a), S1(b), S2(c)"]:
            source = parse_instance(text)
            assert certain_answers(q, source, [nested]) == certain_answers(
                q, source, glav
            )
