"""Tests for the Instance data structure and its indexes."""

from repro.logic.atoms import Atom
from repro.logic.instances import Instance, union_all
from repro.logic.parser import parse_instance
from repro.logic.values import Constant, Null


A, B, C = Constant("a"), Constant("b"), Constant("c")
N1, N2 = Null("n1"), Null("n2")


class TestBasics:
    def test_len_and_iter(self):
        inst = parse_instance("S(a,b), S(b,c)")
        assert len(inst) == 2
        assert all(f.relation == "S" for f in inst)

    def test_duplicates_collapse(self):
        inst = Instance([Atom("S", (A, B)), Atom("S", (A, B))])
        assert len(inst) == 1

    def test_containment(self):
        inst = parse_instance("S(a,b)")
        assert Atom("S", (A, B)) in inst
        assert Atom("S", (B, A)) not in inst

    def test_equality_and_hash(self):
        assert parse_instance("S(a,b)") == parse_instance("S(a, b)")
        assert hash(parse_instance("S(a,b)")) == hash(parse_instance("S(a,b)"))

    def test_subinstance_order(self):
        assert parse_instance("S(a,b)") <= parse_instance("S(a,b), S(b,c)")
        assert not parse_instance("S(c,c)") <= parse_instance("S(a,b)")


class TestIndexes:
    def test_facts_of_relation(self):
        inst = parse_instance("S(a,b), S(b,c), Q(a)")
        assert len(inst.facts_of("S")) == 2
        assert inst.facts_of("Missing") == ()

    def test_facts_with_position_value(self):
        inst = parse_instance("S(a,b), S(a,c), S(b,c)")
        assert len(inst.facts_with("S", 0, A)) == 2
        assert len(inst.facts_with("S", 1, C)) == 2
        assert inst.facts_with("S", 0, C) == ()

    def test_relations(self):
        assert parse_instance("S(a,b), Q(a)").relations() == {"S", "Q"}


class TestDomains:
    def test_constants_and_nulls_split(self):
        inst = Instance([Atom("R", (A, N1)), Atom("R", (B, N2))])
        assert inst.constants() == {A, B}
        assert inst.nulls() == {N1, N2}

    def test_active_domain(self):
        inst = Instance([Atom("R", (A, N1))])
        assert inst.active_domain() == {A, N1}

    def test_groundness(self):
        assert parse_instance("S(a,b)").is_ground()
        assert not parse_instance("S(a,_n)").is_ground()


class TestConstruction:
    def test_union(self):
        left = parse_instance("S(a,b)")
        right = parse_instance("S(b,c)")
        assert len(left.union(right)) == 2

    def test_union_all(self):
        parts = [parse_instance("S(a,b)"), parse_instance("S(b,c)"), parse_instance("Q(a)")]
        assert len(union_all(parts)) == 3

    def test_difference(self):
        inst = parse_instance("S(a,b), S(b,c)")
        assert len(inst.difference(parse_instance("S(a,b)"))) == 1

    def test_restrict_by_predicate(self):
        inst = parse_instance("S(a,b), Q(a)")
        assert inst.restrict(lambda f: f.relation == "Q") == parse_instance("Q(a)")

    def test_restrict_to_relations(self):
        inst = parse_instance("S(a,b), Q(a), R(b)")
        assert inst.restrict_to_relations(["Q", "R"]).relations() == {"Q", "R"}

    def test_map_values(self):
        inst = Instance([Atom("R", (A, N1))])
        mapped = inst.map_values({N1: B})
        assert mapped == parse_instance("R(a,b)")


class TestIsomorphism:
    def test_null_renaming_isomorphism(self):
        left = parse_instance("R(a,_x), R(_x,_y)")
        right = parse_instance("R(a,_u), R(_u,_v)")
        assert left.isomorphic(right)

    def test_non_isomorphic_structures(self):
        left = parse_instance("R(a,_x), R(_x,a)")
        right = parse_instance("R(a,_u), R(_v,a)")
        assert not left.isomorphic(right)

    def test_constants_must_match_without_renaming(self):
        assert not parse_instance("S(a,b)").isomorphic(parse_instance("S(c,d)"))

    def test_constant_renaming_isomorphism(self):
        left = parse_instance("S(a,b), S(b,a)")
        right = parse_instance("S(c,d), S(d,c)")
        assert left.isomorphic(right, rename_constants=True)

    def test_constant_renaming_respects_structure(self):
        left = parse_instance("S(a,a)")
        right = parse_instance("S(c,d)")
        assert not left.isomorphic(right, rename_constants=True)

    def test_different_sizes_never_isomorphic(self):
        assert not parse_instance("S(a,b)").isomorphic(parse_instance("S(a,b), S(b,a)"))
