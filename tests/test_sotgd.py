"""Tests for (plain) SO tgds."""

import pytest

from repro.errors import DependencyError
from repro.logic.atoms import Atom
from repro.logic.parser import parse_so_tgd
from repro.logic.sotgd import SOClause, SOTgd
from repro.logic.terms import FuncTerm
from repro.logic.values import Variable


X, Y = Variable("x"), Variable("y")


class TestPlainness:
    def test_plain_so_tgd(self, so_tgd_413):
        assert so_tgd_413.is_plain()

    def test_equality_makes_it_not_plain(self):
        so = parse_so_tgd("Emp(e) -> Mgr(e, f(e)) ; Emp(e) & e = f(e) -> SelfMgr(e)")
        assert not so.is_plain()

    def test_nested_term_makes_it_not_plain(self):
        so = parse_so_tgd("S(x) -> R(f(g(x)))")
        assert not so.is_plain()


class TestValidation:
    def test_head_variable_not_in_body_rejected(self):
        with pytest.raises(DependencyError):
            SOClause(body=(Atom("S", (X,)),), equalities=(), head=(Atom("R", (Y,)),))

    def test_function_term_in_body_atom_rejected(self):
        with pytest.raises(DependencyError):
            SOClause(
                body=(Atom("S", (FuncTerm("f", (X,)),)),),
                equalities=(),
                head=(Atom("R", (X,)),),
            )

    def test_empty_clause_body_rejected(self):
        with pytest.raises(DependencyError):
            SOClause(body=(), equalities=(), head=(Atom("R", (X,)),))

    def test_no_clauses_rejected(self):
        with pytest.raises(DependencyError):
            SOTgd(functions=(), clauses=())

    def test_undeclared_function_rejected(self):
        clause = SOClause(
            body=(Atom("S", (X,)),),
            equalities=(),
            head=(Atom("R", (FuncTerm("f", (X,)),)),),
        )
        with pytest.raises(DependencyError):
            SOTgd(functions=(), clauses=(clause,))

    def test_inconsistent_function_arity_rejected(self):
        clause = SOClause(
            body=(Atom("S", (X, Y)),),
            equalities=(),
            head=(
                Atom("R", (FuncTerm("f", (X,)),)),
                Atom("R", (FuncTerm("f", (X, Y)),)),
            ),
        )
        with pytest.raises(DependencyError):
            SOTgd(functions=("f",), clauses=(clause,))

    def test_shared_source_target_relation_rejected(self):
        with pytest.raises(DependencyError):
            parse_so_tgd("S(x) -> S(f(x))")

    def test_equality_variable_must_occur_in_body(self):
        with pytest.raises(DependencyError):
            SOClause(
                body=(Atom("S", (X,)),),
                equalities=((Y, FuncTerm("f", (X,))),),
                head=(Atom("R", (X,)),),
            )


class TestStructure:
    def test_functions_collected_by_parser(self):
        so = parse_so_tgd("S(x,y) -> R(f(x), g(y))")
        assert set(so.functions) == {"f", "g"}

    def test_function_arity(self, so_tgd_414):
        assert so_tgd_414.function_arity("f") == 2
        assert so_tgd_414.function_arity("g") == 1

    def test_max_universal_variables(self, so_tgd_414):
        assert so_tgd_414.max_universal_variables() == 3

    def test_clause_universal_variables_in_order(self):
        so = parse_so_tgd("S(y,x) -> R(f(x))")
        assert so.clauses[0].universal_variables == (Y, X)

    def test_schemas(self, so_tgd_414):
        assert set(so_tgd_414.source_schema().names) == {"S", "Q"}
        assert set(so_tgd_414.target_schema().names) == {"R"}

    def test_equality_and_hash(self):
        left = parse_so_tgd("S(x) -> R(f(x))")
        right = parse_so_tgd("S(x) -> R(f(x))")
        assert left == right
        assert hash(left) == hash(right)
