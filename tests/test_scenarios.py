"""Cross-cutting integration tests over the named exchange scenarios.

Every scenario must exhibit the full nested-vs-flat story: strict implication
one way, inexpressibility as GLAV, certain-answer gap on the correlation
query, SQL execution agreement, and well-behaved cores.
"""

import pytest

from repro.core.fblock_analysis import decide_bounded_fblock_size
from repro.core.implication import implies
from repro.engine.chase import chase
from repro.engine.core_instance import core
from repro.engine.model_check import satisfies
from repro.export.sql import execute_exchange, render_instance_values
from repro.workloads.scenarios import ALL_SCENARIOS


@pytest.mark.parametrize("scenario", ALL_SCENARIOS, ids=lambda s: s.name)
class TestScenarioContract:
    def test_source_generator_scales(self, scenario):
        small = scenario.source(2)
        large = scenario.source(6)
        assert len(large) > len(small) > 0

    def test_nested_strictly_implies_flat(self, scenario):
        assert implies([scenario.nested], scenario.flat)
        assert not implies(scenario.flat, [scenario.nested])

    def test_nested_not_glav_expressible(self, scenario):
        assert not decide_bounded_fblock_size([scenario.nested]).bounded

    def test_chase_is_a_solution(self, scenario):
        source = scenario.source(3)
        solution = chase(source, [scenario.nested])
        assert satisfies(source, solution, scenario.nested)

    def test_core_shrinks_or_keeps(self, scenario):
        source = scenario.source(3)
        solution = chase(source, [scenario.nested])
        assert len(core(solution)) <= len(solution)

    def test_sql_agrees_with_chase(self, scenario):
        source = scenario.source(3)
        via_sql = execute_exchange(source, [scenario.nested])
        via_chase = render_instance_values(chase(source, [scenario.nested]))
        assert via_sql.isomorphic(via_chase)

    def test_correlation_query_gap(self, scenario):
        """The two-purchases-same-key query is certain only under nesting."""
        from repro.queries import certain_answers, parse_query

        target_relations = sorted(scenario.nested.target_schema().names)
        # the dependent relation is the one written by the inner part
        inner = scenario.nested.part(2).head[0].relation
        query = parse_query(f"q(i1, i2) :- {inner}(y, i1) & {inner}(y, i2)")
        source = scenario.source(4)
        nested_answers = certain_answers(query, source, [scenario.nested])
        flat_answers = certain_answers(query, source, scenario.flat)
        assert flat_answers <= nested_answers
        # at least one patient/customer/student has two items in every scenario
        assert len(nested_answers) > len(flat_answers)
