"""Differential tests: columnar and SQL backends against the tuple engines.

The three backends must produce the *same facts* (not just isomorphic
copies): they consume the same Skolemized clause programs and all label
nulls with the same ground Skolem terms, so set equality is the contract.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import perf
from repro.engine.chase import chase, compile_clause_program
from repro.engine.columnar import (
    ColumnarInstance,
    columnar_execute_exchange,
    columnar_fixpoint_rounds,
)
from repro.engine.dispatch import (
    COLUMNAR_AUTO_THRESHOLD,
    SQL_AUTO_THRESHOLD,
    choose_backend,
)
from repro.engine.egd_chase import chase_egds
from repro.engine.fixpoint_chase import _clauses_of, fixpoint_chase
from repro.engine.hom_kernel import find_homomorphism_indexed
from repro.engine.sql_backend import (
    decode_value,
    encode_value,
    sql_chase_egds,
    sql_execute_exchange,
    sql_fixpoint_chase,
)
from repro.errors import BudgetExceeded, ChaseError, EgdViolation
from repro.export.sql import execute_exchange
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.parser import parse_egd, parse_instance, parse_nested_tgd, parse_tgd
from repro.logic.terms import FuncTerm
from repro.logic.values import Constant, Null

from tests.strategies import SOURCE_RELATIONS, instances, nested_tgds, same_schema_tgds

CONSTANTS = [Constant(c) for c in "abc"]

source_facts = st.builds(
    Atom,
    st.sampled_from([n for n, a in SOURCE_RELATIONS if a == 2]),
    st.tuples(st.sampled_from(CONSTANTS), st.sampled_from(CONSTANTS)),
)
q_facts = st.builds(Atom, st.just("Q"), st.tuples(st.sampled_from(CONSTANTS)))
sources = st.lists(st.one_of(source_facts, q_facts), max_size=6).map(Instance)


class TestColumnarInstance:
    def test_fact_index_protocol(self):
        inst = parse_instance("R(a,b), R(a,c), P(a)")
        store = ColumnarInstance(inst)
        assert len(store) == 3
        assert set(store) == set(inst)
        assert set(store.facts_of("R")) == set(inst.facts_of("R"))
        assert set(store.facts_with("R", 0, Constant("a"))) == set(
            inst.facts_with("R", 0, Constant("a"))
        )
        assert store.facts_with("R", 1, Constant("zzz")) == ()
        assert store.facts_of("Nope") == ()
        assert Atom("P", (Constant("a"),)) in store
        assert Atom("P", (Constant("b"),)) not in store
        assert store.relations() == {"R", "P"}

    def test_add_fact_deduplicates(self):
        store = ColumnarInstance()
        fact = Atom("R", (Constant("a"), Constant("b")))
        assert store.add_fact(fact)
        assert not store.add_fact(fact)
        assert len(store) == 1

    def test_mixed_arity_relation_supported(self):
        # Tuple instances allow one relation name at several arities; the
        # columnar store keys fact tables by (relation, arity).
        facts = [Atom("R", (Constant("a"),)), Atom("R", (Constant("a"), Constant("b")))]
        store = ColumnarInstance(facts)
        assert set(store.facts_of("R")) == set(facts)
        assert set(store.facts_with("R", 0, Constant("a"))) == set(facts)

    @settings(max_examples=30, deadline=None)
    @given(instance=instances())
    def test_hom_kernel_runs_over_columnar(self, instance):
        store = ColumnarInstance(instance)
        hom = find_homomorphism_indexed(instance, store)
        assert hom is not None
        assert instance.map_values(hom).facts <= instance.facts


class TestExchangeDifferential:
    CASES = [
        ([parse_tgd("S(x,y) -> R(y,x)")], "S(a,b), S(b,c)"),
        ([parse_tgd("S(x,y) -> R(x,z) & T2(z,y)")], "S(a,b)"),
        ([parse_tgd("S(x,y) & S(y,z) -> R(x,z)")], "S(a,b), S(b,c), S(c,d)"),
        ([parse_tgd("S(x,x) -> P(x)")], "S(a,a), S(a,b)"),
        (
            [parse_nested_tgd("S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))")],
            "S(a,b), S(a,c)",
        ),
    ]

    @pytest.mark.parametrize("deps,source_text", CASES)
    def test_backends_agree_exactly(self, deps, source_text):
        source = parse_instance(source_text)
        expected = chase(source, deps)
        clauses = compile_clause_program(deps)
        assert set(columnar_execute_exchange(source, clauses)) == set(expected)
        assert set(sql_execute_exchange(source, clauses)) == set(expected)
        for backend in ("tuple", "columnar", "sql", "auto"):
            assert set(execute_exchange(source, deps, backend=backend)) == set(expected)

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(tgd=nested_tgds(max_depth=2), source=sources)
    def test_random_mapping_backends_agree(self, tgd, source):
        expected = set(chase(source, [tgd]))
        clauses = compile_clause_program([tgd])
        assert set(columnar_execute_exchange(source, clauses)) == expected
        assert set(sql_execute_exchange(source, clauses)) == expected


class TestFixpointDifferential:
    def test_transitive_closure_all_backends(self):
        tc = parse_tgd("E(x,y) & E(y,z) -> E(x,z)")
        inst = parse_instance("E(a,b), E(b,c), E(c,d), E(d,a)")
        base = fixpoint_chase(inst, [tc], backend="tuple")
        for backend in ("columnar", "sql"):
            result = fixpoint_chase(inst, [tc], backend=backend)
            assert result.backend == backend
            assert set(result.instance) == set(base.instance)
            assert result.reached_fixpoint

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(tgds=same_schema_tgds(), instance=instances(max_facts=5))
    def test_bounded_rounds_tuple_vs_columnar_exact(self, tgds, instance):
        # The columnar engine replays the tuple loop round for round, so even
        # a bounded (possibly pre-fixpoint) run must agree exactly.
        base = fixpoint_chase(instance, tgds, max_rounds=3, backend="tuple")
        col = fixpoint_chase(instance, tgds, max_rounds=3, backend="columnar")
        assert set(col.instance) == set(base.instance)
        assert (col.rounds, col.reached_fixpoint) == (base.rounds, base.reached_fixpoint)

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(tgds=same_schema_tgds(), instance=instances(max_facts=5))
    def test_fixpoints_tuple_vs_sql_exact(self, tgds, instance):
        # SQL rounds only see the previous round's facts, so compare at the
        # (unique) fixpoint: whenever the tuple run converged within the
        # bound, a generously bounded SQL run must land on the same set.
        base = fixpoint_chase(instance, tgds, max_rounds=4, backend="tuple")
        if not base.reached_fixpoint:
            return
        result, __, reached = sql_fixpoint_chase(
            instance, _clauses_of(tgds), max_rounds=40
        )
        assert reached
        assert set(result) == set(base.instance)

    def test_budget_exceeded_on_every_backend(self):
        tc = parse_tgd("E(x,y) & E(y,z) -> E(x,z)")
        inst = parse_instance("E(a,b), E(b,c), E(c,d), E(d,a)")
        for backend in ("tuple", "columnar", "sql"):
            with pytest.raises(BudgetExceeded):
                fixpoint_chase(inst, [tc], budget=5, backend=backend)

    def test_sql_backend_rejects_fact_hook(self):
        tc = parse_tgd("E(x,y) & E(y,z) -> E(x,z)")
        inst = parse_instance("E(a,b), E(b,c)")
        with pytest.raises(ChaseError):
            fixpoint_chase(inst, [tc], backend="sql", fact_hook=lambda f: None)
        # auto must route around the restriction, not trip over it
        result = fixpoint_chase(inst, [tc], backend="auto", fact_hook=lambda f: None)
        assert result.backend in ("tuple", "columnar")


class TestEgdDifferential:
    FUNCTIONAL = [parse_egd("R(x,y) & R(x,z) -> y = z")]

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(instance=instances(max_facts=6))
    def test_sql_egds_match_tuple_egds(self, instance):
        try:
            expected = chase_egds(instance, self.FUNCTIONAL)
        except EgdViolation:
            with pytest.raises(EgdViolation):
                sql_chase_egds(instance, self.FUNCTIONAL)
            return
        result, merges = sql_chase_egds(instance, self.FUNCTIONAL)
        assert set(result) == set(expected[0])
        assert merges == expected[1]

    def test_chained_merges(self):
        inst = Instance([
            Atom("R", (Null("x1"), Null("x2"))),
            Atom("R", (Null("x2"), Null("x3"))),
            Atom("Q", (Null("x1"),)),
            Atom("Q", (Null("x3"),)),
        ])
        egds = [parse_egd("Q(x) & Q(y) -> x = y"), parse_egd("R(x,y) & R(y,z) -> x = z")]
        expected_inst, expected_map = chase_egds(inst, egds)
        got_inst, got_map = sql_chase_egds(inst, egds)
        assert set(got_inst) == set(expected_inst)
        assert got_map == expected_map


class TestSkolemEncodingRegression:
    """Constants containing ','/'('/')' must not collide inside Skolem labels."""

    ADVERSARIAL = [
        Constant("a,b"),
        Constant("f_y(a"),
        Constant(")"),
        Constant("3:x"),
        Constant("o'brien"),
    ]

    def test_encode_value_injective_on_collision_shapes(self):
        # The naive concatenation rendered both of these as "f(a,b)".
        left = FuncTerm("f", (Constant("a,b"),))
        right = FuncTerm("f", (Constant("a"), Constant("b")))
        assert encode_value(left) != encode_value(right)
        assert decode_value(encode_value(left)) is left
        assert decode_value(encode_value(right)) is right

    def test_adversarial_constants_roundtrip(self):
        for value in self.ADVERSARIAL:
            assert decode_value(encode_value(value)) is value
        nested = FuncTerm("g", (FuncTerm("f", tuple(self.ADVERSARIAL)), Null("n,1")))
        assert decode_value(encode_value(nested)) is nested

    def test_exchange_with_adversarial_constants(self):
        deps = [parse_tgd("S(x,y) -> R(x,z) & T2(z,y)")]
        source = Instance(
            [Atom("S", (a, b)) for a in self.ADVERSARIAL for b in self.ADVERSARIAL]
        )
        expected = set(chase(source, deps))
        clauses = compile_clause_program(deps)
        assert set(sql_execute_exchange(source, clauses)) == expected
        assert set(columnar_execute_exchange(source, clauses)) == expected

    def test_adversarial_pair_yields_distinct_nulls(self):
        # Two triggers whose naive labels collide: f_z("a,b") vs f_z("a","b")
        # must stay two distinct nulls all the way through SQLite.
        deps = [parse_tgd("S(x,y) -> R(z,y)")]
        source = Instance([
            Atom("S", (Constant("a,b"), Constant("k"))),
            Atom("S", (Constant("a"), Constant("b"))),
        ])
        result = execute_exchange(source, deps, backend="sql")
        nulls = {fact.args[0] for fact in result.facts_of("R")}
        assert len(nulls) == 2


class TestDispatch:
    TC = [parse_tgd("E(x,y) & E(y,z) -> E(x,z)")]

    def _clauses(self):
        return _clauses_of(self.TC)

    def test_explicit_choices_respected(self):
        for backend in ("tuple", "columnar", "sql"):
            choice = choose_backend(
                backend, input_size=10, clauses=self._clauses(), certified=True
            )
            assert choice.backend == backend
            assert not choice.was_auto

    def test_auto_small_input_stays_tuple(self):
        choice = choose_backend(
            "auto", input_size=10, clauses=self._clauses(), certified=True
        )
        assert choice.backend == "tuple"

    def test_auto_medium_input_goes_columnar(self):
        choice = choose_backend(
            "auto",
            input_size=COLUMNAR_AUTO_THRESHOLD,
            clauses=self._clauses(),
            certified=False,
        )
        assert choice.backend == "columnar"

    def test_auto_large_certified_goes_sql(self):
        choice = choose_backend(
            "auto",
            input_size=SQL_AUTO_THRESHOLD,
            clauses=self._clauses(),
            certified=True,
        )
        assert choice.backend == "sql"

    def test_auto_large_uncertified_stays_off_sql(self):
        choice = choose_backend(
            "auto",
            input_size=SQL_AUTO_THRESHOLD,
            clauses=self._clauses(),
            certified=False,
        )
        assert choice.backend == "columnar"

    def test_auto_fact_stream_avoids_sql(self):
        choice = choose_backend(
            "auto",
            input_size=SQL_AUTO_THRESHOLD,
            clauses=self._clauses(),
            certified=True,
            needs_fact_stream=True,
        )
        assert choice.backend == "columnar"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ChaseError):
            choose_backend(
                "fortran", input_size=1, clauses=self._clauses(), certified=True
            )


class TestPerfCounters:
    def test_backend_counters_recorded(self):
        deps = [parse_tgd("S(x,y) & S(y,z) -> R(x,z)")]
        source = parse_instance("S(a,b), S(b,c), S(c,d)")
        clauses = compile_clause_program(deps)
        with perf.measuring() as stats:
            sql_execute_exchange(source, clauses)
        assert stats.get("backend.sql.statements") > 0
        assert stats.get("backend.sql.encoded_rows") == 3
        assert stats.get("backend.sql.decoded_rows") == 2
        with perf.measuring() as stats:
            columnar_execute_exchange(source, clauses)
        assert stats.get("backend.columnar.joins") > 0
        assert stats.get("backend.columnar.encoded_rows") == 3
        assert stats.get("backend.columnar.decoded_rows") == 2

    def test_columnar_fixpoint_counts_rounds(self):
        tc = parse_tgd("E(x,y) & E(y,z) -> E(x,z)")
        store = ColumnarInstance(parse_instance("E(a,b), E(b,c)"))
        with perf.measuring() as stats:
            rounds, reached = columnar_fixpoint_rounds(store, _clauses_of([tc]))
        assert reached
        assert stats.get("chase.fixpoint_rounds") == rounds
        assert stats.get("chase.facts") == 1
