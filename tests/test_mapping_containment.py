"""Tests for mapping containment (repro.analysis.containment) and its stack.

Covers the decision procedure and its three-valued verdicts, machine-checked
refutation witnesses, the frontier admissibility gate, the persistent
``contain`` verdict store, the MC001/MC002 lints, ``optimize(semantic=True)``
with equivalence certificates, the ``repro contain`` / ``optimize --json``
CLI surfaces, and the differential properties of the acceptance criteria:
equivalence iff mutual containment (against ``equivalent``), agreement with
the bounded model-enumeration oracle, and Hypothesis-verified solution-set
preservation of semantic optimization.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings

from repro import perf
from repro.analysis.containment import (
    ContainmentWitness,
    check_containment,
    check_equivalence,
    contains,
    eliminate_redundant,
    redundancy_report,
    verify_witness,
)
from repro.cli import main
from repro.core.implication import equivalent, implies_semantic_bounded
from repro.core.normalization import optimize, optimize_report
from repro.errors import UndecidedError
from repro.logic.parser import parse_egd, parse_nested_tgd, parse_tgd
from repro.workloads.families import containment_pair, redundant_ladder_tgds

from .strategies import schema_mappings

COPY = "S(x,y) -> R(x,y)"
WEAK = "S(x,y) -> exists z . R(x,z)"
DIVERGING = "E(x,y) -> exists z . E(y,z)"


class TestCheckContainment:
    def test_stronger_contained_in_weaker(self):
        report = check_containment([parse_tgd(COPY)], [parse_tgd(WEAK)])
        assert report.holds is True
        assert report.status == "contained"
        assert bool(report)
        assert report.certified
        assert report.counterexample is None
        assert set(report.proof_map()) == {"#1"}

    def test_weaker_not_contained_in_stronger(self):
        report = check_containment([parse_tgd(WEAK)], [parse_tgd(COPY)])
        assert report.holds is False
        assert report.status == "not-contained"
        assert not bool(report)
        witness = report.counterexample
        assert witness is not None
        assert witness.source and witness.target

    def test_self_containment(self):
        sigma = [parse_tgd(COPY), parse_tgd("T(x,y) -> P(x)")]
        assert check_containment(sigma, sigma).holds is True

    def test_empty_rhs_trivially_contained(self):
        report = check_containment([parse_tgd(COPY)], [])
        assert report.holds is True
        assert report.verdicts == ()

    def test_single_dependency_inputs(self):
        assert check_containment(parse_tgd(COPY), parse_tgd(WEAK)).holds is True

    def test_nested_tgd_rhs(self):
        intro = parse_nested_tgd(
            "S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))"
        )
        glav = parse_tgd("S(x1,x2) & S(x1,x3) -> exists y . R(y,x2) & R(y,x3)")
        # the nested tgd (one shared witness per x1) implies the pairwise
        # GLAV weakening, but not vice versa (Section 3 expressiveness gap)
        assert check_containment([intro], [glav]).holds is True
        assert check_containment([glav], [intro]).holds is False

    def test_source_egds_weaken_lhs_obligations(self):
        # without the key egd, the canonical source S(a1,a2), S(a1,a3)
        # demands P(a2,a3), which the diagonal lhs cannot produce; the egd
        # merges a2 = a3 on every legal source, and P(a2,a2) follows
        lhs = [parse_tgd("S(x,y) -> P(y,y)")]
        rhs = [parse_tgd("S(x,y) & S(x,z) -> P(y,z)")]
        egd = parse_egd("S(x,y) & S(x,z) -> y = z")
        assert check_containment(lhs, rhs).holds is False
        assert check_containment(lhs, rhs, [egd]).holds is True

    def test_workload_pairs(self):
        sigma, sigma_prime = containment_pair(2, contained=True)
        assert check_containment(sigma, sigma_prime).holds is True
        sigma, sigma_prime = containment_pair(2, contained=False)
        report = check_containment(sigma, sigma_prime)
        assert report.holds is False
        assert sum(1 for v in report.verdicts if v.status == "refuted") == 2

    def test_report_json_is_deterministic(self):
        sigma, sigma_prime = containment_pair(2, contained=False)
        first = check_containment(sigma, sigma_prime).to_json()
        second = check_containment(sigma, sigma_prime).to_json()
        assert first == second
        payload = json.loads(first)
        assert payload["status"] == "not-contained"
        assert payload["verdicts"][0]["witness"] is not None


class TestAdmissibilityGate:
    def test_uncertified_set_refused_without_budget(self):
        report = check_containment([parse_tgd(DIVERGING)], [parse_tgd(DIVERGING)])
        assert report.holds is None
        assert report.status == "undecided"
        assert not report.certified
        assert report.chase_fact_bound is None
        assert report.refusals
        assert "frontier" in report.refusals[0].reason

    def test_contains_raises_on_undecided(self):
        with pytest.raises(UndecidedError):
            contains([parse_tgd(DIVERGING)], [parse_tgd(DIVERGING)])

    def test_tiny_budget_refuses_per_dependency(self):
        # WEAK <= COPY is not subsumption-answerable, so the sweep-cost
        # preflight really runs -- and a 1-unit budget refuses it
        report = check_containment(
            [parse_tgd(WEAK)], [parse_tgd(COPY)], budget=1,
        )
        assert report.holds is None
        assert report.refusals
        assert "budget" in report.refusals[0].reason

    def test_generous_budget_admits(self):
        report = check_containment(
            [parse_tgd(WEAK)], [parse_tgd(COPY)], budget=10**9,
        )
        assert report.holds is False

    def test_so_tgd_rhs_refused(self):
        from repro.logic.parser import parse_so_tgd

        so = parse_so_tgd("S(x,y) -> R(f(x), f(y))")
        report = check_containment([parse_tgd(COPY)], [so])
        assert report.holds is None
        assert "undecidable" in report.refusals[0].reason

    def test_refutation_sound_despite_refusals(self):
        # one refuted rhs makes the whole query False even if another
        # rhs is refused (an SO tgd here)
        from repro.logic.parser import parse_so_tgd

        so = parse_so_tgd("S(x,y) -> R(f(x), f(y))")
        report = check_containment([parse_tgd(WEAK)], [parse_tgd(COPY), so])
        assert report.holds is False


class TestWitnesses:
    def test_witness_machine_checks(self):
        lhs = [parse_tgd(WEAK)]
        rhs = parse_tgd(COPY)
        witness = check_containment(lhs, [rhs]).counterexample
        assert verify_witness(witness, lhs, rhs)

    def test_tampered_witness_fails(self):
        lhs = [parse_tgd(WEAK)]
        rhs = parse_tgd(COPY)
        witness = check_containment(lhs, [rhs]).counterexample
        # swap source and target: the "demanded" check must fail
        tampered = ContainmentWitness(
            dependency=witness.dependency, pattern=witness.pattern,
            source=witness.target, target=witness.source,
        )
        assert not verify_witness(tampered, lhs, rhs)

    def test_witness_invalid_against_stronger_lhs(self):
        # the same witness does not refute containment in a set that
        # actually implies the rhs
        lhs = [parse_tgd(WEAK)]
        rhs = parse_tgd(COPY)
        witness = check_containment(lhs, [rhs]).counterexample
        assert not verify_witness(witness, [parse_tgd(COPY)], rhs)

    def test_witness_respects_source_egds(self):
        lhs = [parse_tgd("S(x,y) -> R(x,y)")]
        rhs = parse_tgd("S(x,y) & S(x,z) -> R(y,z)")
        egd = parse_egd("S(x,y) & S(x,z) -> y = z")
        witness = check_containment(lhs, [rhs]).counterexample
        assert verify_witness(witness, lhs, rhs)
        # under the key egd the witness source is illegal or absorbable
        assert not verify_witness(witness, lhs, rhs, [egd])


class TestEquivalenceCertificate:
    def test_mutual_containment_is_equivalence(self):
        a = [parse_tgd("S(x,y) & T(y,z) -> R(x,z)")]
        b = [parse_tgd("T(y,z) & S(x,y) -> R(x,z)")]
        certificate = check_equivalence(a, b)
        assert certificate.holds is True
        assert certificate.forward.holds and certificate.backward.holds

    def test_one_direction_only(self):
        certificate = check_equivalence([parse_tgd(COPY)], [parse_tgd(WEAK)])
        assert certificate.holds is False
        assert certificate.forward.holds is True
        assert certificate.backward.holds is False

    def test_undecided_direction_propagates(self):
        certificate = check_equivalence(
            [parse_tgd(DIVERGING)], [parse_tgd(DIVERGING)]
        )
        assert certificate.holds is None


class TestDifferentialAgainstEquivalent:
    """Sigma == Sigma' iff both containments hold (Corollary 3.11)."""

    @settings(
        max_examples=20, deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(sigma=schema_mappings(), sigma_prime=schema_mappings())
    def test_equivalence_iff_mutual_containment(self, sigma, sigma_prime):
        forward = check_containment(sigma, sigma_prime)
        backward = check_containment(sigma_prime, sigma)
        assert forward.holds is not None and backward.holds is not None
        assert (forward.holds and backward.holds) == equivalent(
            sigma, sigma_prime
        )


class TestDifferentialAgainstSemanticOracle:
    """Containment verdicts agree with bounded model enumeration."""

    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(sigma=schema_mappings(max_tgds=2), sigma_prime=schema_mappings(max_tgds=2))
    def test_agreement_on_random_mappings(self, sigma, sigma_prime):
        report = check_containment(sigma, sigma_prime)
        assert report.holds is not None
        if report.holds:
            for dep in sigma_prime:
                assert implies_semantic_bounded(
                    sigma, dep, max_facts=2, max_constants=2
                )
        else:
            refuted = next(
                v for v in report.verdicts if v.status == "refuted"
            )
            dep = sigma_prime[int(refuted.dependency.lstrip("#")) - 1]
            assert verify_witness(refuted.witness, sigma, dep)


class TestRedundancy:
    def test_redundant_ladder(self):
        deps = redundant_ladder_tgds(2)
        entries = redundancy_report(deps)
        assert [e.index for e in entries if e.status == "redundant"] == [2, 3]

    def test_no_false_redundancy(self):
        deps = [parse_tgd(COPY), parse_tgd("T(x,y) -> P(x)")]
        assert redundancy_report(deps) == ()

    def test_uncertified_set_refused(self):
        deps = [parse_tgd(DIVERGING), parse_tgd("E(x,y) -> exists z . E(z,x)")]
        entries = redundancy_report(deps)
        assert entries and all(e.status == "refused" for e in entries)

    def test_eliminate_redundant(self):
        deps = redundant_ladder_tgds(2)
        kept, dropped = eliminate_redundant(deps)
        assert len(kept) == 2 and len(dropped) == 2
        assert equivalent(kept, deps)

    def test_eliminate_keeps_uncertified_sets_intact(self):
        deps = [parse_tgd(DIVERGING), parse_tgd(DIVERGING.replace("E(", "E("))]
        kept, dropped = eliminate_redundant(deps)
        assert len(kept) == len(deps) and not dropped


class TestLints:
    def test_mc001_emitted_for_semantic_redundancy(self):
        from repro.analysis.static import analyze

        report = analyze(redundant_ladder_tgds(2))
        codes = [f.code for f in report.findings]
        assert codes.count("MC001") == 2
        assert report.ok

    def test_mc002_emitted_outside_frontier(self):
        from repro.analysis.static import analyze

        deps = [parse_tgd(DIVERGING), parse_tgd("E(x,y) -> exists z . E(z,x)")]
        report = analyze(deps)
        assert any(f.code == "MC002" for f in report.findings)

    def test_check_containment_false_suppresses_pass(self):
        from repro.analysis.static import analyze

        report = analyze(redundant_ladder_tgds(2), check_containment=False)
        assert not any(f.code.startswith("MC") for f in report.findings)

    def test_mc_codes_in_sarif_rules(self):
        from repro.analysis.sarif import sarif_report
        from repro.analysis.static import analyze

        sarif = sarif_report(analyze(redundant_ladder_tgds(2)))
        rules = sarif["runs"][0]["tool"]["driver"]["rules"]
        ids = [rule["id"] for rule in rules]
        assert "MC001" in ids and "MC002" in ids


class TestSemanticOptimize:
    def test_semantic_optimize_drops_redundant(self):
        deps = redundant_ladder_tgds(2)
        report = optimize_report(deps, semantic=True)
        assert len(report.kept) == 2 and len(report.dropped) == 2
        assert report.certificate is not None
        assert report.certificate.holds is True

    def test_plain_optimize_unchanged_signature(self):
        strong, weak = parse_tgd(COPY), parse_tgd(WEAK)
        assert len(optimize([strong, weak])) == 1

    def test_optimize_report_json_deterministic(self):
        deps = redundant_ladder_tgds(2)
        assert (
            optimize_report(deps, semantic=True).to_json()
            == optimize_report(deps, semantic=True).to_json()
        )

    def test_semantic_optimize_safe_on_uncertified_sets(self):
        deps = [parse_tgd(DIVERGING), parse_tgd("E(x,y) -> exists z . E(z,x)")]
        report = optimize_report(deps, semantic=True)
        assert len(report.kept) == 2 and not report.dropped
        assert report.certificate.holds is None  # refused, not falsified

    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(sigma=schema_mappings())
    def test_semantic_optimize_preserves_solution_sets(self, sigma):
        report = optimize_report(sigma, semantic=True)
        # certificate checked both directions against the *input*
        assert report.certificate.holds is True
        assert equivalent(list(report.kept), sigma)
        assert check_containment(list(report.kept), sigma).holds is True
        assert check_containment(sigma, list(report.kept)).holds is True


class TestDiskVerdictStore:
    def test_write_through_and_hit(self, tmp_path):
        from repro.cache import clear_all_caches, configure

        configure(tmp_path)
        try:
            clear_all_caches()
            sigma, sigma_prime = containment_pair(2, contained=False)
            first = check_containment(sigma, sigma_prime)
            clear_all_caches(disk=False)
            with perf.measuring() as stats:
                second = check_containment(sigma, sigma_prime)
            assert stats.get("containment.verdict_disk_hits") == 1
            assert first.to_json() == second.to_json()
            assert second.counterexample is not None
        finally:
            configure(None)

    def test_budget_changes_the_key(self, tmp_path):
        from repro.cache import clear_all_caches, configure

        configure(tmp_path)
        try:
            clear_all_caches()
            lhs, rhs = [parse_tgd(COPY)], [parse_tgd(WEAK)]
            check_containment(lhs, rhs)
            with perf.measuring() as stats:
                report = check_containment(lhs, rhs, budget=10**9)
            assert stats.get("containment.verdict_disk_hits") == 0
            assert report.holds is True
        finally:
            configure(None)

    def test_corrupt_payload_degrades_to_recompute(self, tmp_path):
        from repro.cache import SPACE_CONTAIN, clear_all_caches, configure
        from repro.cache.store import get_store

        configure(tmp_path)
        try:
            clear_all_caches()
            lhs, rhs = [parse_tgd(COPY)], [parse_tgd(WEAK)]
            check_containment(lhs, rhs)
            store = get_store()
            with store._connect() as conn:  # corrupt every contain row
                conn.execute(
                    "UPDATE entries SET payload = X'00' WHERE space = ?",
                    (SPACE_CONTAIN,),
                )
            assert check_containment(lhs, rhs).holds is True
        finally:
            configure(None)


class TestCli:
    def test_contain_json_exit_codes(self, capsys):
        code = main(["contain", "--lhs", COPY, "--rhs", WEAK])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["status"] == "contained"
        code = main(["contain", "--lhs", WEAK, "--rhs", COPY])
        assert code == 1
        assert json.loads(capsys.readouterr().out)["status"] == "not-contained"

    def test_contain_json_deterministic(self, capsys):
        argv = ["contain", "--lhs", WEAK, "--rhs", COPY]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        assert capsys.readouterr().out == first

    def test_contain_witnesses(self, capsys):
        code = main(["contain", "--lhs", WEAK, "--rhs", COPY, "--witnesses"])
        assert code == 1
        out = capsys.readouterr().out
        assert "containment: not-contained" in out
        assert "counterexample source:" in out
        assert "unmatched target pattern:" in out

    def test_contain_undecided_exits_nonzero(self, capsys):
        code = main(["contain", "--lhs", DIVERGING, "--rhs", DIVERGING])
        assert code == 1
        assert json.loads(capsys.readouterr().out)["status"] == "undecided"

    def test_contain_with_egd(self, capsys):
        code = main([
            "contain",
            "--lhs", "S(x,y) -> P(y,y)",
            "--rhs", "S(x,y) & S(x,z) -> P(y,z)",
            "--egd", "S(x,y) & S(x,z) -> y = z",
        ])
        assert code == 0

    def test_optimize_prose_unchanged(self, capsys):
        code = main(["optimize", "--dep", COPY, "--dep", WEAK])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("2 dependencies -> 1")

    def test_optimize_json(self, capsys):
        code = main(["optimize", "--dep", COPY, "--dep", WEAK, "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["semantic"] is False
        assert len(payload["kept"]) == 1
        assert len(payload["dropped"]) == 1
        assert payload["dropped"][0]["reason"]

    def test_optimize_json_semantic_certificate(self, capsys):
        code = main([
            "optimize", "--dep", COPY, "--dep", WEAK, "--json", "--semantic",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["semantic"] is True
        assert payload["equivalent"] is True
        assert payload["certificate"]["forward"]["status"] == "contained"
        assert payload["certificate"]["backward"]["status"] == "contained"

    def test_optimize_json_deterministic(self, capsys):
        argv = ["optimize", "--dep", COPY, "--dep", WEAK, "--json", "--semantic"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        assert capsys.readouterr().out == first


class TestPerfCounters:
    def test_counters_flow(self):
        with perf.measuring() as stats:
            check_containment([parse_tgd(COPY)], [parse_tgd(WEAK)])
        assert stats.get("containment.queries") == 1
        assert stats.get("containment.checks") == 1
        with perf.measuring() as stats:
            check_containment([parse_tgd(WEAK)], [parse_tgd(COPY)])
        assert stats.get("containment.refuted") == 1
        with perf.measuring() as stats:
            check_containment([parse_tgd(DIVERGING)], [parse_tgd(DIVERGING)])
        assert stats.get("containment.refused") == 1
