"""Tests for s-t tgds (GLAV constraints)."""

import pytest

from repro.errors import DependencyError
from repro.logic.atoms import Atom
from repro.logic.parser import parse_tgd
from repro.logic.terms import FuncTerm
from repro.logic.tgds import STTgd
from repro.logic.values import Constant, Variable


X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestConstruction:
    def test_variables_partitioned(self):
        tgd = parse_tgd("S(x,y) -> R(x,z)")
        assert tgd.universal_variables == (X, Y)
        assert tgd.existential_variables == (Z,)

    def test_no_existentials(self):
        tgd = parse_tgd("S(x,y) -> R(y,x)")
        assert tgd.existential_variables == ()

    def test_empty_body_rejected(self):
        with pytest.raises(DependencyError):
            STTgd(body=(), head=(Atom("R", (X,)),))

    def test_empty_head_rejected(self):
        with pytest.raises(DependencyError):
            STTgd(body=(Atom("S", (X,)),), head=())

    def test_constants_rejected(self):
        with pytest.raises(DependencyError):
            STTgd(body=(Atom("S", (Constant("a"),)),), head=(Atom("R", (X,)),))

    def test_universal_order_is_first_occurrence(self):
        tgd = parse_tgd("S(y,x) & T(z) -> R(x)")
        assert tgd.universal_variables == (Y, X, Z)


class TestSchemas:
    def test_source_and_target_schemas(self):
        tgd = parse_tgd("S(x,y) -> R(x)")
        assert tgd.source_schema().arity("S") == 2
        assert tgd.target_schema().arity("R") == 1

    def test_validate_against_good(self):
        from repro.logic.schema import Schema

        tgd = parse_tgd("S(x,y) -> R(x)")
        tgd.validate_against(Schema([("S", 2)]), Schema([("R", 1)]))

    def test_validate_against_bad_arity(self):
        from repro.logic.schema import Schema

        tgd = parse_tgd("S(x,y) -> R(x)")
        with pytest.raises(DependencyError):
            tgd.validate_against(Schema([("S", 3)]), Schema([("R", 1)]))


class TestSkolemization:
    def test_skolem_head_replaces_existentials(self):
        tgd = parse_tgd("S(x,y) -> R(x,z)")
        head = tgd.skolem_head()
        assert head[0].args[0] == X
        skolem = head[0].args[1]
        assert isinstance(skolem, FuncTerm)
        assert skolem.args == (X, Y)

    def test_skolem_head_custom_namer(self):
        tgd = parse_tgd("S(x) -> R(z)")
        head = tgd.skolem_head(function_namer=lambda v: "sk")
        assert head[0].args[0].function == "sk"

    def test_to_so_tgd_is_plain(self):
        assert parse_tgd("S(x,y) -> R(x,z)").to_so_tgd().is_plain()


class TestConversions:
    def test_to_nested_round_trip(self):
        tgd = parse_tgd("S(x,y) -> R(x,z)")
        nested = tgd.to_nested()
        assert nested.part_count == 1
        assert nested.to_st_tgd() == tgd

    def test_equality_ignores_name(self):
        assert parse_tgd("S(x) -> R(x)", name="a") == parse_tgd("S(x) -> R(x)", name="b")
