"""Differential property tests: the optimized engine vs naive oracles.

The indexed, reordering CQ matcher and the block-decomposing homomorphism
search must agree with the brute-force reference implementations of
:mod:`repro.engine.naive` on random inputs.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.engine.homomorphism import find_homomorphism, is_homomorphism
from repro.engine.matching import find_matches
from repro.engine.naive import find_homomorphism_naive, find_matches_naive
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.values import Constant, Null, Variable


CONSTANTS = [Constant(name) for name in "abc"]
NULLS = [Null(f"n{i}") for i in range(3)]
VARIABLES = [Variable(name) for name in "xyzw"]

values = st.sampled_from(CONSTANTS + NULLS)
facts = st.builds(
    Atom, st.sampled_from(["R", "P"]), st.tuples(values, values)
)
instances = st.lists(facts, min_size=0, max_size=7).map(Instance)

query_args = st.sampled_from(VARIABLES + CONSTANTS[:1])
query_atoms = st.builds(
    Atom, st.sampled_from(["R", "P"]), st.tuples(query_args, query_args)
)
queries = st.lists(query_atoms, min_size=1, max_size=3)


def _canonical(matches) -> set:
    return {frozenset((var, value) for var, value in m.items()) for m in matches}


class TestMatchingAgreesWithNaive:
    @settings(max_examples=80, deadline=None)
    @given(query=queries, instance=instances)
    def test_same_match_sets(self, query, instance):
        fast = _canonical(find_matches(query, instance))
        slow = _canonical(find_matches_naive(query, instance))
        assert fast == slow

    @settings(max_examples=40, deadline=None)
    @given(query=queries, instance=instances, value=values)
    def test_same_match_sets_with_partial(self, query, instance, value):
        partial = {VARIABLES[0]: value}
        fast = _canonical(find_matches(query, instance, partial=partial))
        slow = _canonical(find_matches_naive(query, instance, partial=partial))
        assert fast == slow


class TestHomomorphismAgreesWithNaive:
    @settings(max_examples=80, deadline=None)
    @given(source=instances, target=instances)
    def test_same_existence_verdict(self, source, target):
        fast = find_homomorphism(source, target)
        slow = find_homomorphism_naive(source, target)
        assert (fast is None) == (slow is None)
        if fast is not None:
            assert is_homomorphism(fast, source, target)
            assert is_homomorphism(
                {k: v for k, v in slow.items()}, source, target
            )

    @settings(max_examples=40, deadline=None)
    @given(source=instances, target=instances, index=st.integers(0, 2))
    def test_same_verdict_with_fixed_binding(self, source, target, index):
        null = NULLS[index]
        if null not in source.nulls():
            return
        for candidate in sorted(target.active_domain(), key=repr)[:2]:
            fast = find_homomorphism(source, target, fixed={null: candidate})
            slow = find_homomorphism_naive(source, target, fixed={null: candidate})
            assert (fast is None) == (slow is None)
