"""Determinism tests: repeated runs produce identical results.

Reproducibility is a design commitment (DESIGN.md §6): fresh values come from
per-run counters, enumeration orders are canonical, and nothing depends on
set iteration order in a way that changes *results*.
"""

from repro.core.canonical import canonical_instances
from repro.core.fblock_analysis import decide_bounded_fblock_size
from repro.core.implication import implies_tgd
from repro.core.patterns import Pattern, enumerate_k_patterns
from repro.engine.chase import chase
from repro.engine.core_instance import core
from repro.logic.parser import parse_instance, parse_tgd
from repro.workloads import random_instance, successor_instance
from repro.logic.schema import Schema


class TestDeterminism:
    def test_chase_is_deterministic(self, intro_nested):
        source = parse_instance("S(a,b), S(a,c), S(b,c)")
        first = chase(source, [intro_nested])
        second = chase(source, [intro_nested])
        assert first == second

    def test_core_is_deterministic(self, so_tgd_48):
        from repro.workloads import cycle_instance

        chased = chase(cycle_instance(5), so_tgd_48)
        assert core(chased) == core(chased)

    def test_pattern_enumeration_order_stable(self, sigma_star):
        first = enumerate_k_patterns(sigma_star, 2)
        second = enumerate_k_patterns(sigma_star, 2)
        assert first == second

    def test_canonical_instances_identical_across_calls(self, sigma_star):
        pattern = Pattern(1, (Pattern(2), Pattern(3)))
        first = canonical_instances(pattern, sigma_star)
        second = canonical_instances(pattern, sigma_star)
        assert first.source == second.source
        assert first.target == second.target

    def test_implies_diagnostics_stable(self, tau_310, tau_prime_310):
        first = implies_tgd([tau_prime_310], tau_310)
        second = implies_tgd([tau_prime_310], tau_310)
        assert first.failing_pattern == second.failing_pattern
        assert first.counterexample_source == second.counterexample_source

    def test_boundedness_verdict_stable(self, intro_nested):
        first = decide_bounded_fblock_size([intro_nested])
        second = decide_bounded_fblock_size([intro_nested])
        assert first.growth == second.growth
        assert first.witness_pattern == second.witness_pattern

    def test_random_workload_seeded(self):
        schema = Schema([("S", 2)])
        assert random_instance(schema, 30, 6, seed=42) == random_instance(
            schema, 30, 6, seed=42
        )

    def test_sql_export_stable(self):
        from repro.export.sql import compile_mapping_to_sql

        deps = [parse_tgd("S(x,y) & S(y,z) -> R(x,w) & T(w,z)")]
        assert compile_mapping_to_sql(deps) == compile_mapping_to_sql(deps)

    def test_chase_order_independent_of_fact_insertion(self):
        tgd = parse_tgd("S(x,y) -> R(x,z)")
        facts = successor_instance(6).facts
        from repro.logic.instances import Instance

        left = chase(Instance(sorted(facts, key=repr)), [tgd])
        right = chase(Instance(sorted(facts, key=repr, reverse=True)), [tgd])
        assert left == right
