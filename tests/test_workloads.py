"""Tests for workload generators and instance families."""

from repro.logic.schema import Schema
from repro.workloads import (
    CYCLE_FAMILY,
    SUCCESSOR_FAMILY,
    SUCCESSOR_Q_FAMILY,
    InstanceFamily,
    clique_instance,
    cycle_instance,
    grid_instance,
    path_instance,
    random_instance,
    singleton,
    successor_instance,
)


class TestGenerators:
    def test_successor_shape(self):
        inst = successor_instance(3)
        assert len(inst) == 3
        # functional and injective: a genuine successor relation
        firsts = [f.args[0] for f in inst]
        seconds = [f.args[1] for f in inst]
        assert len(set(firsts)) == 3 and len(set(seconds)) == 3

    def test_successor_with_zero(self):
        inst = successor_instance(2, zero_relation="Z")
        assert len(inst.facts_of("Z")) == 1

    def test_cycle_closes(self):
        inst = cycle_instance(4)
        assert len(inst) == 4
        # every element has in-degree and out-degree 1
        assert len({f.args[0] for f in inst}) == 4
        assert len({f.args[1] for f in inst}) == 4
        assert len(inst.constants()) == 4

    def test_cycle_of_length_zero(self):
        assert len(cycle_instance(0)) == 0

    def test_path_is_successor(self):
        assert len(path_instance(5)) == 5

    def test_clique_size(self):
        assert len(clique_instance(3)) == 6  # ordered pairs without loops

    def test_grid_edges(self):
        inst = grid_instance(2, 3)
        assert len(inst.facts_of("H")) == 4
        assert len(inst.facts_of("V")) == 3

    def test_singleton(self):
        inst = singleton("Q", "q")
        assert len(inst) == 1

    def test_random_instance_deterministic(self):
        schema = Schema([("S", 2), ("Q", 1)])
        left = random_instance(schema, 20, 5, seed=7)
        right = random_instance(schema, 20, 5, seed=7)
        assert left == right

    def test_random_instance_seed_matters(self):
        schema = Schema([("S", 2)])
        assert random_instance(schema, 20, 5, seed=1) != random_instance(
            schema, 20, 5, seed=2
        )


class TestFamilies:
    def test_successor_family(self):
        inst = SUCCESSOR_FAMILY(4)
        assert len(inst.facts_of("S")) == 4

    def test_cycle_family_is_odd(self):
        for n in range(3):
            assert len(CYCLE_FAMILY(n)) % 2 == 1

    def test_successor_q_family(self):
        inst = SUCCESSOR_Q_FAMILY(3)
        assert len(inst.facts_of("Q")) == 1
        assert len(inst.facts_of("S")) == 3

    def test_family_instances_iterator(self):
        pairs = list(SUCCESSOR_FAMILY.instances([1, 2]))
        assert [size for size, __ in pairs] == [1, 2]

    def test_custom_family(self):
        family = InstanceFamily("cliques", clique_instance)
        assert len(family(3)) == 6
