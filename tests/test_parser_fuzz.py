"""Fuzz tests: the parser must fail cleanly (ParseError / DependencyError),
never crash, on arbitrary input."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.errors import DependencyError, ParseError
from repro.logic.parser import (
    parse_egd,
    parse_instance,
    parse_nested_tgd,
    parse_so_tgd,
    parse_tgd,
)


PARSE_FUNCTIONS = [parse_tgd, parse_nested_tgd, parse_so_tgd, parse_egd, parse_instance]

# Character soup biased toward the grammar's alphabet so that some inputs get
# deep into the parser before failing.
grammar_soup = st.text(
    alphabet="SRTxyzab123(),&;=.-> _", min_size=0, max_size=60
)
arbitrary_text = st.text(min_size=0, max_size=40)


class TestParserRobustness:
    @settings(max_examples=200, deadline=None)
    @given(text=grammar_soup, which=st.integers(0, 4))
    def test_no_crash_on_grammar_soup(self, text, which):
        try:
            PARSE_FUNCTIONS[which](text)
        except (ParseError, DependencyError):
            pass  # clean rejection is the contract

    @settings(max_examples=100, deadline=None)
    @given(text=arbitrary_text, which=st.integers(0, 4))
    def test_no_crash_on_arbitrary_text(self, text, which):
        try:
            PARSE_FUNCTIONS[which](text)
        except (ParseError, DependencyError):
            pass

    @settings(max_examples=100, deadline=None)
    @given(
        rel=st.sampled_from(["S", "T", "R"]),
        args=st.lists(st.sampled_from(["x", "y", "z"]), min_size=1, max_size=4),
    )
    def test_well_formed_atoms_always_parse(self, rel, args):
        from repro.logic.parser import parse_atom

        atom = parse_atom(f"{rel}({', '.join(args)})")
        assert atom.relation == rel
        assert atom.arity == len(args)

    @settings(max_examples=100, deadline=None)
    @given(st.data())
    def test_generated_tgd_text_parses(self, data):
        body_rel = data.draw(st.sampled_from(["S", "T"]))
        head_rel = data.draw(st.sampled_from(["R", "P"]))
        body_vars = data.draw(
            st.lists(st.sampled_from(["x", "y"]), min_size=1, max_size=2)
        )
        head_vars = data.draw(
            st.lists(st.sampled_from(["x", "y", "w"]), min_size=1, max_size=2)
        )
        # ensure head variables not in the body are existential, which always parses
        text = f"{body_rel}({', '.join(body_vars)}) -> {head_rel}({', '.join(head_vars)})"
        tgd = parse_tgd(text)
        assert tgd.body[0].relation == body_rel
