"""Tests for the egd chase on source instances."""

import pytest

from repro.engine.egd_chase import UnionFind, chase_egds, satisfies_egds
from repro.errors import EgdViolation
from repro.logic.egds import KeyDependency
from repro.logic.parser import parse_egd, parse_instance
from repro.logic.values import Constant, Null


class TestUnionFind:
    def test_find_self(self):
        uf = UnionFind()
        assert uf.find(Constant("a")) == Constant("a")

    def test_union_and_find(self):
        uf = UnionFind()
        uf.union(Constant("a"), Constant("b"))
        assert uf.find(Constant("a")) == uf.find(Constant("b"))

    def test_constant_beats_null(self):
        uf = UnionFind()
        uf.union(Null("n"), Constant("a"))
        assert uf.find(Null("n")) == Constant("a")

    def test_transitive_merge(self):
        uf = UnionFind()
        uf.union(Constant("a"), Constant("b"))
        uf.union(Constant("b"), Constant("c"))
        assert uf.find(Constant("c")) == uf.find(Constant("a"))


class TestEgdChase:
    def test_functional_dependency_merges(self):
        egd = parse_egd("P(z,x) & P(z,y) -> x = y")
        chased, eq = chase_egds(
            parse_instance("P(a,b), P(a,c)"), [egd], allow_constant_merge=True
        )
        assert len(chased) == 1
        assert eq[Constant("b")] == eq[Constant("c")]

    def test_rigid_constants_raise(self):
        egd = parse_egd("P(z,x) & P(z,y) -> x = y")
        with pytest.raises(EgdViolation):
            chase_egds(parse_instance("P(a,b), P(a,c)"), [egd])

    def test_satisfied_instance_unchanged(self):
        egd = parse_egd("P(z,x) & P(z,y) -> x = y")
        inst = parse_instance("P(a,b), P(c,d)")
        chased, eq = chase_egds(inst, [egd])
        assert chased == inst
        assert all(k == v for k, v in eq.items())

    def test_cascading_merges_reach_fixpoint(self):
        egd = parse_egd("P(z,x) & P(z,y) -> x = y")
        # merging b,c exposes a new violation through Q
        inst = parse_instance("P(a,b), P(a,c), P(b,d), P(c,e)")
        chased, __ = chase_egds(inst, [egd], allow_constant_merge=True)
        assert satisfies_egds(chased, [egd])
        # b=c forces d=e
        assert len(chased) == 2

    def test_key_dependency_chase(self):
        key = KeyDependency("S", 2, key=[1])
        chased, __ = chase_egds(
            parse_instance("S(a,c), S(b,c)"), list(key), allow_constant_merge=True
        )
        assert len(chased) == 1


class TestSatisfiesEgds:
    def test_satisfied(self):
        egd = parse_egd("S(x,y) & S(x,z) -> y = z")
        assert satisfies_egds(parse_instance("S(a,b), S(c,d)"), [egd])

    def test_violated(self):
        egd = parse_egd("S(x,y) & S(x,z) -> y = z")
        assert not satisfies_egds(parse_instance("S(a,b), S(a,c)"), [egd])

    def test_empty_egd_list(self):
        assert satisfies_egds(parse_instance("S(a,b)"), [])
