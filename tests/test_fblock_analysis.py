"""Tests for f-block size analysis (Theorems 4.4, 4.9, 4.10, 4.11, 5.5)."""

import pytest

from repro.core.fblock_analysis import (
    bounded_anchor_witness,
    decide_bounded_fblock_size,
    decide_bounded_fblock_size_exhaustive,
    enumerate_source_instances,
    fblock_threshold,
    max_pattern_body_atoms,
)
from repro.errors import ResourceLimitExceeded
from repro.logic.parser import parse_egd, parse_nested_tgd, parse_tgd
from repro.logic.schema import Schema


class TestGrowthDecision:
    def test_intro_nested_is_unbounded(self, intro_nested):
        verdict = decide_bounded_fblock_size([intro_nested])
        assert not verdict.bounded
        assert verdict.witness_pattern is not None
        # growth must be strictly increasing at the tail
        assert verdict.growth[-1] > verdict.growth[-2]

    def test_flat_tgd_is_bounded(self):
        verdict = decide_bounded_fblock_size([parse_tgd("S(x,y) -> R(x,z)")])
        assert verdict.bounded
        assert verdict.bound == 1

    def test_flat_tgd_with_two_head_atoms(self):
        verdict = decide_bounded_fblock_size(
            [parse_tgd("S(x,y) -> R(x,z) & T(z,y)")]
        )
        assert verdict.bounded
        assert verdict.bound == 2

    def test_nested_without_shared_nulls_is_bounded(self):
        tgd = parse_nested_tgd("S1(x1) -> (S2(x2) -> T(x1, x2))")
        assert decide_bounded_fblock_size([tgd]).bounded

    def test_nested_with_ground_child_is_bounded(self):
        tgd = parse_nested_tgd("S(x1,x2) -> exists y . (R(y,x2) & (P(x3) -> U(x3)))")
        assert decide_bounded_fblock_size([tgd]).bounded

    def test_child_existential_not_shared_is_bounded(self):
        # each child triggering gets its own null: blocks stay small
        tgd = parse_nested_tgd("S1(x1) -> (S2(x2) -> exists y . T(x1, x2, y))")
        assert decide_bounded_fblock_size([tgd]).bounded

    def test_nested_415_is_unbounded(self, nested_415):
        """Example 4.15's nested tgd shares u across all (x, y): unbounded."""
        assert not decide_bounded_fblock_size([nested_415]).bounded

    def test_paper_sigma_star_is_bounded(self, sigma_star):
        """sigma (*) shares y1 = f(x1) between parts 2 and 3, but part 2's
        body S2(x2) triggers per x2 with the SAME null y1, so the block grows:
        actually unbounded -- cloning part 2 grows R2(y1, x2) facts."""
        verdict = decide_bounded_fblock_size([sigma_star])
        assert not verdict.bounded

    def test_mapping_with_mixed_tgds(self, intro_nested):
        verdict = decide_bounded_fblock_size(
            [parse_tgd("S(x,y) -> P(x)"), intro_nested]
        )
        assert not verdict.bounded

    def test_schema_mapping_accepted(self, intro_nested):
        from repro.mappings import SchemaMapping

        verdict = decide_bounded_fblock_size(SchemaMapping([intro_nested]))
        assert not verdict.bounded


class TestWithSourceEgds:
    def test_egd_can_make_fblocks_bounded(self):
        """Q(z) -> exists y forall x (P(z,x) -> R(y,x)) is unbounded, but with
        P functional in z each z has one x, so blocks have size one."""
        tgd = parse_nested_tgd("Q(z) -> exists y . (P(z,x) -> R(y,x))")
        assert not decide_bounded_fblock_size([tgd]).bounded
        egd = parse_egd("P(z,x) & P(z,xp) -> x = xp")
        verdict = decide_bounded_fblock_size([tgd], source_egds=[egd])
        assert verdict.bounded

    def test_example_53_stays_unbounded(self, sigma_53, egd_53):
        """The egd of Example 5.3 fixes x1 per z but x2 still ranges freely."""
        assert not decide_bounded_fblock_size([sigma_53], source_egds=[egd_53]).bounded


class TestThresholdAndAnchor:
    def test_threshold_is_positive(self, intro_nested):
        assert fblock_threshold([parse_tgd("S(x,y) -> R(x,z)")]) >= 1
        assert fblock_threshold([intro_nested]) >= 2

    def test_anchor_witness_recursive_function(self, sigma_star, intro_nested):
        assert bounded_anchor_witness([intro_nested]) >= 1
        assert bounded_anchor_witness([sigma_star]) >= bounded_anchor_witness(
            [parse_tgd("S(x) -> R(x)")]
        )

    def test_max_pattern_body_atoms(self, sigma_star):
        assert max_pattern_body_atoms(sigma_star) == 1


class TestExhaustiveProcedure:
    def test_flat_tgd_bounded_by_one(self):
        tgd = parse_tgd("S(x) -> R(x,z)")
        assert decide_bounded_fblock_size_exhaustive(
            [tgd], bound=1, anchor=1, max_constants=2
        )

    def test_bound_violation_detected(self):
        tgd = parse_tgd("S(x) -> R(x,z) & T(z)")
        # every trigger creates a 2-fact block, so bound=1 fails
        assert not decide_bounded_fblock_size_exhaustive(
            [tgd], bound=1, anchor=1, max_constants=1
        )

    def test_resource_limit_enforced(self):
        tgd = parse_tgd("S(x,y) -> R(x,z)")
        with pytest.raises(ResourceLimitExceeded):
            decide_bounded_fblock_size_exhaustive(
                [tgd], bound=2, anchor=3, max_instances=3
            )

    def test_egds_filter_sources(self):
        tgd = parse_nested_tgd("Q(z) -> exists y . (P(z,x) -> R(y,x))")
        egd = parse_egd("P(z,x) & P(z,xp) -> x = xp")
        # with the key, every legal source gives singleton blocks
        assert decide_bounded_fblock_size_exhaustive(
            [tgd], bound=1, anchor=1, max_constants=2, source_egds=[egd]
        )


class TestInstanceEnumeration:
    def test_enumeration_counts_up_to_iso(self):
        schema = Schema([("Q", 1)])
        instances = list(enumerate_source_instances(schema, max_facts=2, max_constants=2))
        # up to iso: {Q(a)} and {Q(a), Q(b)}
        assert len(instances) == 2

    def test_binary_relation_enumeration(self):
        schema = Schema([("S", 2)])
        instances = list(enumerate_source_instances(schema, max_facts=1, max_constants=2))
        # up to iso: S(a,a) and S(a,b)
        assert len(instances) == 2

    def test_no_isomorphic_duplicates(self):
        schema = Schema([("S", 2)])
        instances = list(enumerate_source_instances(schema, max_facts=2, max_constants=3))
        for i, left in enumerate(instances):
            for right in instances[i + 1:]:
                assert not left.isomorphic(right, rename_constants=True)


class TestEdgeCases:
    """Empty schemas, all-constant cores, and single-null blocks."""

    def test_enumeration_of_empty_schema_is_empty(self):
        assert list(enumerate_source_instances(Schema(), 3, 3)) == []

    def test_enumeration_with_zero_facts_is_empty(self):
        schema = Schema([("Q", 1)])
        assert list(enumerate_source_instances(schema, 0, 2)) == []

    def test_enumerated_instances_are_all_constant(self):
        schema = Schema([("S", 2)])
        for instance in enumerate_source_instances(schema, 2, 2):
            assert not instance.nulls()

    def test_ground_tgd_gives_all_constant_singleton_blocks(self):
        # no existentials: the chase output is all-constant, bound 1
        verdict = decide_bounded_fblock_size([parse_tgd("S(x,y) -> R(x,y)")])
        assert verdict.bounded
        assert verdict.bound == 1
        assert decide_bounded_fblock_size_exhaustive(
            [parse_tgd("S(x,y) -> R(x,y)")], bound=1, anchor=1, max_constants=2
        )

    def test_single_null_block_bound_counts_both_facts(self):
        # each trigger makes one null shared by two facts: bound 2
        verdict = decide_bounded_fblock_size(
            [parse_tgd("S(x) -> R(x,y) & T(y)")]
        )
        assert verdict.bounded
        assert verdict.bound == 2

    def test_threshold_of_ground_mapping_is_one(self):
        assert fblock_threshold([parse_tgd("S(x,y) -> R(x,y)")]) == 1

    def test_anchor_witness_is_at_least_one(self):
        assert bounded_anchor_witness([parse_tgd("S(x,y) -> R(x,y)")]) >= 1
