"""Tests for egds and key dependencies."""

import pytest

from repro.errors import DependencyError
from repro.logic.atoms import Atom
from repro.logic.egds import Egd, KeyDependency, key_dependency
from repro.logic.parser import parse_egd
from repro.logic.values import Constant, Variable


X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestEgdValidation:
    def test_parse_and_fields(self):
        egd = parse_egd("S(x,y) & S(x,z) -> y = z")
        assert egd.left == Y and egd.right == Z
        assert len(egd.body) == 2

    def test_equality_variable_must_be_in_body(self):
        with pytest.raises(DependencyError):
            Egd(body=(Atom("S", (X,)),), left=X, right=Y)

    def test_empty_body_rejected(self):
        with pytest.raises(DependencyError):
            Egd(body=(), left=X, right=X)

    def test_constants_rejected(self):
        with pytest.raises(DependencyError):
            Egd(body=(Atom("S", (Constant("a"), X)),), left=X, right=X)


class TestKeyDependency:
    def test_unique_predecessor_key(self):
        """The single key of Theorem 5.1: S's second position determines the first."""
        [egd] = key_dependency("S", 2, [1])
        assert egd.left != egd.right
        # the two body atoms agree on position 1
        assert egd.body[0].args[1] == egd.body[1].args[1]
        assert egd.body[0].args[0] != egd.body[1].args[0]

    def test_one_egd_per_non_key_position(self):
        egds = key_dependency("T", 4, [0, 1])
        assert len(egds) == 2

    def test_all_positions_key_gives_no_egds(self):
        assert key_dependency("S", 2, [0, 1]) == []

    def test_out_of_range_position_rejected(self):
        with pytest.raises(DependencyError):
            key_dependency("S", 2, [2])

    def test_key_dependency_object_iterates_egds(self):
        key = KeyDependency("S", 2, key=[1])
        assert len(list(key)) == 1
