"""Run every docstring example in the package as a test.

The library's docstrings carry runnable examples (deliverable (e)); this
module keeps them honest without requiring ``--doctest-modules`` flags.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


MODULES = sorted(
    name
    for __, name, __ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.rsplit(".", 1)[-1].startswith("_")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"


def test_doctests_exist_somewhere():
    """At least a healthy number of modules carry runnable examples."""
    with_examples = 0
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        finder = doctest.DocTestFinder()
        if any(t.examples for t in finder.find(module)):
            with_examples += 1
    assert with_examples >= 15
