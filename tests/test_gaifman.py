"""Tests for Gaifman graphs of facts and nulls and their metrics."""

from repro.engine.gaifman import (
    fact_block_of,
    fact_block_size,
    fact_blocks,
    fact_graph,
    fblock_degree,
    full_fact_graph,
    is_connected,
    longest_simple_path,
    null_graph,
    null_path_length,
)
from repro.logic.parser import parse_atom, parse_instance


class TestFactBlocks:
    def test_ground_facts_are_singletons(self):
        blocks = list(fact_blocks(parse_instance("R(a,b), R(b,c)")))
        assert len(blocks) == 2
        assert all(len(b) == 1 for b in blocks)

    def test_shared_null_connects(self):
        inst = parse_instance("R(a,_x), T(_x,b)")
        assert fact_block_size(inst) == 2

    def test_chain_of_nulls_is_one_block(self):
        inst = parse_instance("R(_x,_y), R(_y,_z), R(_z,_w)")
        blocks = list(fact_blocks(inst))
        assert len(blocks) == 1

    def test_block_of_specific_fact(self):
        inst = parse_instance("R(a,_x), T(_x,b), Q(c)")
        fact = parse_atom("Q(c)").substitute({})  # Q(c) parsed as variable atom
        inst2 = parse_instance("R(a,_x), T(_x,b), Q(c)")
        q_fact = next(f for f in inst2 if f.relation == "Q")
        assert fact_block_of(inst2, q_fact) == frozenset([q_fact])

    def test_empty_instance_block_size_zero(self):
        assert fact_block_size(parse_instance("")) == 0

    def test_connectivity(self):
        assert is_connected(parse_instance("R(a,_x), T(_x,b)"))
        assert not is_connected(parse_instance("R(a,_x), T(_y,b)"))


class TestDegrees:
    def test_star_has_high_degree(self):
        inst = parse_instance("R(_c,a), R(_c,b), R(_c,d), R(_c,e)")
        assert fblock_degree(inst) == 3

    def test_chain_has_degree_two(self):
        inst = parse_instance("R(_x,_y), R(_y,_z), R(_z,_w)")
        assert fblock_degree(inst) == 2

    def test_ground_instance_degree_zero(self):
        assert fblock_degree(parse_instance("R(a,b)")) == 0

    def test_full_fact_graph_has_all_pairs(self):
        inst = parse_instance("R(_c,a), R(_c,b), R(_c,d)")
        assert full_fact_graph(inst).number_of_edges() == 3
        # the star representation used for connectivity has fewer edges
        assert fact_graph(inst).number_of_edges() == 2


class TestNullGraph:
    def test_nodes_are_nulls(self):
        inst = parse_instance("R(a,_x), R(_x,_y)")
        graph = null_graph(inst)
        assert graph.number_of_nodes() == 2

    def test_cooccurrence_edges(self):
        inst = parse_instance("R(_x,_y), R(_y,_z)")
        graph = null_graph(inst)
        assert graph.number_of_edges() == 2
        assert graph.has_edge(*sorted(inst.nulls(), key=repr)[:2])

    def test_path_length_of_chain(self):
        inst = parse_instance("R(_a,_b), R(_b,_c), R(_c,_d)")
        assert null_path_length(inst) == 3

    def test_path_length_of_star(self):
        # star: center _u with leaves -> longest simple path has 2 edges
        inst = parse_instance("R(_u,_a), R(_u,_b), R(_u,_c)")
        assert null_path_length(inst) == 2

    def test_no_nulls_path_zero(self):
        assert null_path_length(parse_instance("R(a,b)")) == 0


class TestLongestSimplePath:
    def test_cycle_path_length(self):
        import networkx as nx

        assert longest_simple_path(nx.cycle_graph(5)) == 4

    def test_complete_graph(self):
        import networkx as nx

        assert longest_simple_path(nx.complete_graph(4)) == 3

    def test_cutoff_stops_early(self):
        import networkx as nx

        assert longest_simple_path(nx.path_graph(10), cutoff=3) >= 3


class TestEdgeCases:
    """Empty instances, all-constant instances, and single-null blocks."""

    def test_empty_instance_metrics(self):
        empty = parse_instance("")
        assert list(fact_blocks(empty)) == []
        assert fact_block_size(empty) == 0
        assert is_connected(empty)  # vacuously
        assert fblock_degree(empty) == 0
        assert null_path_length(empty) == 0
        assert fact_graph(empty).number_of_nodes() == 0
        assert full_fact_graph(empty).number_of_nodes() == 0
        assert null_graph(empty).number_of_nodes() == 0

    def test_empty_graph_longest_path(self):
        import networkx as nx

        assert longest_simple_path(nx.Graph()) == 0

    def test_all_constant_instance_is_fully_disconnected(self):
        inst = parse_instance("R(a,b), R(b,c), T(a), T(c)")
        blocks = list(fact_blocks(inst))
        assert len(blocks) == 4
        assert all(len(block) == 1 for block in blocks)
        assert fact_block_size(inst) == 1
        assert not is_connected(inst)
        assert fblock_degree(inst) == 0
        assert full_fact_graph(inst).number_of_edges() == 0
        assert null_graph(inst).number_of_nodes() == 0
        assert null_path_length(inst) == 0

    def test_all_constant_singleton_is_connected(self):
        # one ground fact: a single (trivially connected) singleton block
        inst = parse_instance("R(a,b)")
        assert is_connected(inst)
        assert fact_block_size(inst) == 1

    def test_single_null_star_block(self):
        # one null shared by three facts: one block, star degree 2 per leaf
        inst = parse_instance("R(a,_u), S(b,_u), T(c,_u)")
        blocks = list(fact_blocks(inst))
        assert len(blocks) == 1
        assert fact_block_size(inst) == 3
        assert fblock_degree(inst) == 2  # complete sharing graph on 3 facts
        assert null_path_length(inst) == 0  # a single null: no null-graph edge

    def test_single_null_single_fact_block(self):
        inst = parse_instance("R(a,_u), T(b)")
        null_fact = next(fact for fact in inst if fact.relation == "R")
        assert fact_block_of(inst, null_fact) == frozenset([null_fact])
        assert fact_block_size(inst) == 1

    def test_repeated_null_in_one_fact(self):
        # _u occurs twice in one fact: still one node, no self-loop
        inst = parse_instance("R(_u,_u)")
        graph = null_graph(inst)
        assert graph.number_of_nodes() == 1
        assert graph.number_of_edges() == 0
        assert null_path_length(inst) == 0
        assert fact_block_size(inst) == 1
