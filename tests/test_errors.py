"""Tests for the exception hierarchy and error reporting quality."""

import pytest

from repro.errors import (
    ChaseError,
    DependencyError,
    EgdViolation,
    ParseError,
    ReproError,
    ResourceLimitExceeded,
    SchemaError,
    UndecidedError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_class",
        [SchemaError, DependencyError, ParseError, ChaseError,
         ResourceLimitExceeded, UndecidedError],
    )
    def test_all_derive_from_repro_error(self, exc_class):
        assert issubclass(exc_class, ReproError)

    def test_egd_violation_is_a_chase_error(self):
        assert issubclass(EgdViolation, ChaseError)

    def test_single_except_catches_everything(self):
        from repro.logic.parser import parse_tgd

        with pytest.raises(ReproError):
            parse_tgd("garbage ->")


class TestErrorPayloads:
    def test_parse_error_snippet(self):
        error = ParseError("unexpected token", position=10, text="S(x, y) -> R(x %")
        assert error.position == 10
        assert "..." in str(error)

    def test_parse_error_without_position(self):
        error = ParseError("malformed")
        assert error.position is None

    def test_egd_violation_records_values(self):
        from repro.logic.values import Constant

        error = EgdViolation(Constant("a"), Constant("b"))
        assert error.left == Constant("a")
        assert "a" in str(error) and "b" in str(error)

    def test_resource_limit_records_limit(self):
        error = ResourceLimitExceeded("patterns", 100)
        assert error.limit == 100
        assert "patterns" in str(error)


class TestErrorsSurfaceAtTheRightLayer:
    def test_schema_error_on_bad_arity(self):
        from repro.logic.schema import Schema

        with pytest.raises(SchemaError):
            Schema([("S", 1), ("S", 2)])

    def test_dependency_error_on_unsafe_tgd(self):
        from repro.logic.atoms import Atom
        from repro.logic.tgds import STTgd
        from repro.logic.values import Variable

        with pytest.raises(DependencyError):
            STTgd(body=(), head=(Atom("R", (Variable("x"),)),))

    def test_egd_violation_from_chase(self):
        from repro.engine.egd_chase import chase_egds
        from repro.logic.parser import parse_egd, parse_instance

        with pytest.raises(EgdViolation):
            chase_egds(
                parse_instance("S(a,b), S(a,c)"),
                [parse_egd("S(x,y) & S(x,z) -> y = z")],
            )

    def test_resource_limit_from_pattern_enumeration(self, sigma_star):
        from repro.core.patterns import enumerate_k_patterns

        with pytest.raises(ResourceLimitExceeded):
            enumerate_k_patterns(sigma_star, 3, max_patterns=10)

    def test_undecided_from_to_glav(self, intro_nested):
        from repro.core.glav_equivalence import to_glav

        with pytest.raises(UndecidedError):
            to_glav([intro_nested])
