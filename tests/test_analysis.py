"""Tests for the structural-property verifiers."""

from repro.analysis import (
    check_admits_universal_solutions,
    check_closed_under_target_homomorphisms,
    check_core_is_universal,
)
from repro.logic.parser import parse_instance, parse_so_tgd, parse_tgd


SOURCES = [
    parse_instance("S(a,b)"),
    parse_instance("S(a,b), S(b,c)"),
    parse_instance(""),
]

EMP_SOURCES = [parse_instance("Emp(a)")]


class TestUniversality:
    def test_glav_admits_universal_solutions(self):
        tgd = parse_tgd("S(x,y) -> R(x,z)")
        candidates = [parse_instance("R(a,a)"), parse_instance("R(a,c), R(b,c)")]
        report = check_admits_universal_solutions([tgd], SOURCES, candidates)
        assert report.holds
        assert report.checked == len(SOURCES)

    def test_nested_admits_universal_solutions(self, intro_nested):
        candidates = [
            parse_instance("R(e,b), R(e,c)"),
            parse_instance("R(e,b)"),
        ]
        assert check_admits_universal_solutions([intro_nested], SOURCES, candidates)


class TestTargetHomClosure:
    def test_plain_so_tgd_closed(self, so_tgd_413):
        candidates = [
            parse_instance("R(u,v), R(v,w)"),
            parse_instance("R(a,a)"),
            parse_instance("R(u,v)"),
        ]
        report = check_closed_under_target_homomorphisms(
            [so_tgd_413], SOURCES[:2], candidates
        )
        assert report.holds

    def test_equality_so_tgd_refuted(self):
        """The self-manager SO tgd is NOT closed under target homomorphisms:
        Mgr(a, b) is a solution (choose f(a) = b != a), but its homomorphic
        image Mgr(a, a) forces f(a) = a without providing SelfMgr(a)."""
        so = parse_so_tgd("Emp(e) -> Mgr(e, f(e)) ; Emp(e) & e = f(e) -> SelfMgr(e)")
        candidates = [
            parse_instance("Mgr(a, _n)"),
            parse_instance("Mgr(a, a)"),
        ]
        report = check_closed_under_target_homomorphisms(
            [so], EMP_SOURCES, candidates
        )
        assert not report.holds
        assert report.counterexample is not None

    def test_report_is_boolean(self, so_tgd_413):
        report = check_closed_under_target_homomorphisms([so_tgd_413], SOURCES[:1])
        assert bool(report) is True


class TestCoreUniversality:
    def test_core_universal_for_nested(self, intro_nested):
        assert check_core_is_universal([intro_nested], SOURCES)

    def test_core_universal_for_plain_so(self, so_tgd_413, so_tgd_48):
        assert check_core_is_universal([so_tgd_413], SOURCES)
        assert check_core_is_universal([so_tgd_48], SOURCES)

    def test_schema_mapping_accepted(self, intro_nested):
        from repro.mappings import SchemaMapping

        assert check_core_is_universal(SchemaMapping([intro_nested]), SOURCES[:2])
