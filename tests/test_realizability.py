"""Tests for pattern realizability (Example 3.4 formalized)."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.patterns import Pattern, enumerate_k_patterns
from repro.core.realizability import is_realizable, pattern_embeds, realized_pattern
from repro.errors import DependencyError
from repro.logic.parser import parse_nested_tgd

from tests.strategies import nested_tgds


EX34 = parse_nested_tgd("S1(x1) -> (S2(x1) -> T2(x1))")


class TestExample34:
    def test_two_node_pattern_realizable(self):
        assert is_realizable(Pattern(1, (Pattern(2),)), EX34)

    def test_cloned_determined_part_unrealizable(self):
        """Example 3.4: the nested part's only variable is bound by the root,
        so patterns with a cloned nested node cannot arise in any chase."""
        assert not is_realizable(Pattern(1, (Pattern(2), Pattern(2))), EX34)

    def test_chase_confirms(self):
        cloned = Pattern(1, (Pattern(2), Pattern(2)))
        realized = realized_pattern(cloned, EX34)
        assert realized == Pattern(1, (Pattern(2),))


class TestCriterion:
    def test_clones_with_own_variables_realizable(self, intro_nested):
        pattern = Pattern(1, (Pattern(2), Pattern(2), Pattern(2)))
        assert is_realizable(pattern, intro_nested)
        realized = realized_pattern(pattern, intro_nested)
        assert pattern_embeds(pattern, realized)

    def test_nested_determined_part(self):
        tgd = parse_nested_tgd("S1(x1) -> (S2(x1, x2) -> (S3(x1) -> T(x2)))")
        # part 3's body uses only ancestor variables: clones of it are dead
        ok = Pattern(1, (Pattern(2, (Pattern(3),)),))
        bad = Pattern(1, (Pattern(2, (Pattern(3), Pattern(3))),))
        assert is_realizable(ok, tgd)
        assert not is_realizable(bad, tgd)

    def test_invalid_pattern_rejected(self, sigma_star):
        with pytest.raises(DependencyError):
            is_realizable(Pattern(1, (Pattern(4),)), sigma_star)


class TestEmbedding:
    def test_reflexive(self, sigma_star):
        for pattern in enumerate_k_patterns(sigma_star, 1):
            assert pattern_embeds(pattern, pattern)

    def test_monotone_under_cloning(self, intro_nested):
        base = Pattern(1, (Pattern(2),))
        bigger = base.with_extra_clone((0,))
        assert pattern_embeds(base, bigger)
        assert not pattern_embeds(bigger, base)

    def test_label_mismatch(self):
        assert not pattern_embeds(Pattern(1), Pattern(2))

    def test_deep_embedding(self):
        small = Pattern(1, (Pattern(3, (Pattern(4),)),))
        big = Pattern(1, (Pattern(2), Pattern(3, (Pattern(4), Pattern(4)))))
        assert pattern_embeds(small, big)


class TestCrossValidation:
    """The syntactic criterion agrees with the chase on random nested tgds."""

    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(tgd=nested_tgds(max_depth=2), clones=st.integers(1, 2))
    def test_criterion_matches_chase(self, tgd, clones):
        for pattern in enumerate_k_patterns(tgd, 1, max_patterns=32):
            for index in range(len(pattern.children)):
                candidate = pattern.with_clones((index,), clones)
                realized = realized_pattern(candidate, tgd)
                assert is_realizable(candidate, tgd) == pattern_embeds(
                    candidate, realized
                )
