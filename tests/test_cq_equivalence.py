"""Tests for CQ-equivalence checking."""

from repro.core.cq_equivalence import (
    canonical_test_sources,
    cq_equivalent,
    cq_equivalent_on,
    cq_refute,
)
from repro.logic.parser import parse_egd, parse_instance, parse_nested_tgd, parse_tgd


class TestRefutation:
    def test_different_heads_refuted(self):
        a = [parse_tgd("S(x,y) -> R(x,y)")]
        b = [parse_tgd("S(x,y) -> R(y,x)")]
        witness = cq_refute(a, b, [parse_instance("S(a,b)")])
        assert witness is not None

    def test_null_renaming_not_refuted(self):
        a = [parse_tgd("S(x,y) -> R(x,z)")]
        b = [parse_tgd("S(x,y) -> R(x,w)")]
        assert cq_refute(a, b, [parse_instance("S(a,b)"), parse_instance("S(a,a)")]) is None

    def test_strictly_stronger_mapping_refuted(self, intro_nested):
        flat = [parse_tgd("S(x1,x2) -> exists y . R(y, x2)")]
        witness = cq_refute([intro_nested], flat, canonical_test_sources(
            [intro_nested], flat))
        assert witness is not None

    def test_egd_filter_applied(self):
        a = [parse_tgd("S(x,y) -> R2(y,y)")]
        b = [parse_tgd("S(x,y) & S(x,z) -> R2(y,z)")]
        egd = parse_egd("S(x,y) & S(x,z) -> y = z")
        bad = parse_instance("S(a,b), S(a,c)")  # violates the key: skipped
        report = cq_equivalent_on(a, b, [bad], source_egds=[egd])
        assert report.equivalent_on_batch
        assert cq_refute(a, b, [bad]) is not None  # without the key it separates


class TestVerification:
    def test_logically_equivalent_mappings_cq_equivalent(self):
        a = [parse_tgd("S(x,y) & T(y,z) -> R(x,z)")]
        b = [parse_tgd("T(y,z) & S(x,y) -> R(x,z)")]
        assert cq_equivalent(a, b)

    def test_redundant_dependency_cq_equivalent(self):
        strong = parse_tgd("S(x,y) -> R(x,y)")
        weak = parse_tgd("S(x,y) -> R(x,z)")
        assert cq_equivalent([strong], [strong, weak])

    def test_nested_vs_constructed_glav(self):
        nested = parse_nested_tgd("S1(x1) -> (S2(x2) -> exists y . T(x1, x2, y))")
        from repro.core.glav_equivalence import to_glav

        glav = to_glav([nested])
        report = cq_equivalent([nested], glav)
        assert report.equivalent_on_batch
        assert report.checked > 0

    def test_intro_nested_vs_unfolding_refuted(self, intro_nested):
        unfolding = [
            parse_tgd("S(x1,x2) & S(x1,x3) -> exists y . (R(y,x2) & R(y,x3))")
        ]
        report = cq_equivalent([intro_nested], unfolding, max_pattern_nodes=4)
        assert not report.equivalent_on_batch
        assert report.counterexample_source is not None

    def test_counterexample_counts_reported(self):
        a = [parse_tgd("S(x,y) -> R(x,y)")]
        report = cq_equivalent(a, a)
        assert report.checked >= 1
