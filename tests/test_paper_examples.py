"""Integration tests: every figure and worked example of the paper.

Each test regenerates the object a paper figure depicts, or re-derives the
verdict a worked example states, using only the public API.  These are the
same artifacts the benchmark harness reports on.
"""

from repro import (
    Pattern,
    canonical_instances,
    chase,
    decide_bounded_fblock_size,
    enumerate_k_patterns,
    equivalent,
    fact_block_size,
    fblock_profile,
    implies,
    implies_tgd,
    nested_expressibility_report,
    one_patterns,
    parse_instance,
    parse_so_tgd,
    parse_tgd,
)
from repro.engine.core_instance import core
from repro.workloads import cycle_instance
from repro.workloads.families import SUCCESSOR_FAMILY, SUCCESSOR_Q_FAMILY


class TestSection2:
    def test_intro_nested_tgd_not_glav_expressible(self, intro_nested):
        """Section 1/2: the running nested tgd is not logically equivalent to
        any finite set of s-t tgds."""
        assert not decide_bounded_fblock_size([intro_nested]).bounded

    def test_skolemized_nested_tgd_is_plain_so_tgd(self, sigma_star):
        """Section 2: every Skolemized nested tgd is a plain SO tgd."""
        assert sigma_star.skolemize().is_plain()

    def test_prop_413_so_tgd_not_nested_expressible(self, so_tgd_413):
        """Section 1/4: S(x,y) -> R(f(x),f(y)) is not equivalent to any
        finite set of nested tgds (via Proposition 4.13)."""
        report = nested_expressibility_report([so_tgd_413], SUCCESSOR_FAMILY, [2, 4, 6, 8])
        assert report.nested_expressible is False


class TestFigure1:
    def test_exactly_eight_one_patterns(self, sigma_star):
        assert len(one_patterns(sigma_star)) == 8


class TestFigures2And3:
    def test_figure_2_canonical_instances_of_p8(self, sigma_star):
        p8 = Pattern(1, (Pattern(2), Pattern(3), Pattern(3, (Pattern(4),))))
        canon = canonical_instances(p8, sigma_star)
        assert len(canon.source) == 5
        assert len(canon.target) == 4
        # y1 = f(a1) is shared by the R2 and both R3 facts
        shared = [n for f in canon.target for n in f.nulls()]
        most_common = max(set(shared), key=shared.count)
        assert shared.count(most_common) == 3

    def test_figure_3_cloned_pattern(self, sigma_star):
        """Figure 3: one clone of sigma_2 and two clones of sigma_4 on p8."""
        p8 = Pattern(1, (Pattern(2), Pattern(3), Pattern(3, (Pattern(4),))))
        cloned = p8.with_extra_clone((0,))  # children sorted: [2], [3], [3 [4]]
        path_to_sigma4_parent = next(
            (i,) for i, child in enumerate(cloned.children) if child.children
        )
        cloned = cloned.with_clones(path_to_sigma4_parent + (0,), 2)
        assert cloned.node_count == p8.node_count + 3
        canon = canonical_instances(cloned, sigma_star)
        # each extra node adds one source atom
        assert len(canon.source) == 8


class TestExample310AndFigure4:
    def test_pattern_set_of_figure_4(self, tau_310):
        patterns = enumerate_k_patterns(tau_310, 3)
        assert patterns == [
            Pattern(1),
            Pattern(1, (Pattern(2),)),
            Pattern(1, (Pattern(2), Pattern(2))),
            Pattern(1, (Pattern(2), Pattern(2), Pattern(2))),
        ]

    def test_verdicts(self, tau_310, tau_prime_310, tau_dprime_310):
        assert not implies([tau_prime_310], tau_310)
        assert implies([tau_dprime_310], tau_310)

    def test_k_values_match_paper(self, tau_310, tau_prime_310, tau_dprime_310):
        assert implies_tgd([tau_prime_310], tau_310).k == 2
        assert implies_tgd([tau_dprime_310], tau_310).k == 3


class TestExample48AndFigure5:
    def test_odd_cycle_core_is_undirected_cycle(self, so_tgd_48):
        for n in (3, 5, 7):
            solution = core(chase(cycle_instance(n), so_tgd_48))
            assert len(solution) == 2 * n
            assert fact_block_size(solution) == 2 * n

    def test_anchor_via_triangle(self, so_tgd_48):
        """The bounded-anchor counterexample: no subinstance of I_n works,
        but I_3 (not a subinstance of I_n for n > 3) does."""
        # a proper subinstance of the cycle (a path) collapses to one edge
        path = parse_instance("S(c0,c1), S(c1,c2), S(c2,c3)")
        assert len(core(chase(path, so_tgd_48))) == 2
        # while the triangle I_3 gives a connected 6-fact core
        triangle = core(chase(cycle_instance(3), so_tgd_48))
        assert len(triangle) == 6


class TestExamples414And415AndFigures6And7:
    def test_figure_6_fact_graph_is_clique(self, so_tgd_414):
        from repro.engine.gaifman import full_fact_graph

        source = SUCCESSOR_Q_FAMILY(5)
        solution = core(chase(source, so_tgd_414))
        graph = full_fact_graph(solution)
        n = graph.number_of_nodes()
        assert graph.number_of_edges() == n * (n - 1) // 2  # complete graph

    def test_figure_6_null_graph_has_long_path(self, so_tgd_414):
        """The bottom of Figure 6: the null graph contains a growing simple path."""
        profiles = fblock_profile([so_tgd_414], SUCCESSOR_Q_FAMILY, [3, 5])
        assert profiles[1].path_length > profiles[0].path_length

    def test_figure_7_null_graph_path_is_constant(self, so_tgd_415):
        profiles = fblock_profile([so_tgd_415], SUCCESSOR_Q_FAMILY, [3, 5])
        assert profiles[0].path_length == profiles[1].path_length == 2

    def test_415_so_tgd_equivalent_to_nested_on_samples(
        self, so_tgd_415, nested_415
    ):
        """Example 4.15 states the SO tgd is logically equivalent to the
        nested tgd; we verify chase homomorphic equivalence on samples and
        implication SO -> nested via IMPLIES."""
        from repro.engine.homomorphism import homomorphically_equivalent

        assert implies([so_tgd_415], nested_415)
        for n in (1, 2, 3):
            source = SUCCESSOR_Q_FAMILY(n)
            left = chase(source, so_tgd_415)
            right = chase(source, nested_415)
            assert homomorphically_equivalent(left, right)

    def test_same_fblocks_different_expressibility(self, so_tgd_414, so_tgd_415):
        """Examples 4.14 vs 4.15: identical f-block sizes on successor+Q,
        yet only one is nested-expressible."""
        left = fblock_profile([so_tgd_414], SUCCESSOR_Q_FAMILY, [3, 4])
        right = fblock_profile([so_tgd_415], SUCCESSOR_Q_FAMILY, [3, 4])
        assert [p.fblock_size for p in left] == [p.fblock_size for p in right]


class TestSection5:
    def test_example_53_cloning_violates_egd(self, sigma_53, egd_53):
        """Example 5.3: I union I[b -> d] violates the source egd."""
        from repro.engine.egd_chase import satisfies_egds

        instance = parse_instance("Q(a), P1(a,b), P2(a,b), P2(a,c)")
        cloned = parse_instance(
            "Q(a), P1(a,b), P2(a,b), P2(a,c), P1(a,d), P2(a,d)"
        )
        assert satisfies_egds(instance, [egd_53])
        assert not satisfies_egds(cloned, [egd_53])

    def test_implication_decidable_with_egds(self, sigma_53, egd_53):
        """Theorem 5.7 in action: IMPLIES terminates and is exact with egds."""
        assert implies([sigma_53], sigma_53, source_egds=[egd_53])

    def test_glav_equivalence_decidable_with_egds(self):
        """Theorem 5.6 in action (see test_glav_equivalence for the flip case)."""
        from repro.core.glav_equivalence import is_equivalent_to_glav
        from repro.logic.parser import parse_egd, parse_nested_tgd

        tgd = parse_nested_tgd("Q(z) -> exists y . (P(z,x) -> R(y,x))")
        egd = parse_egd("P(z,x) & P(z,xp) -> x = xp")
        assert is_equivalent_to_glav([tgd], source_egds=[egd]) and not (
            is_equivalent_to_glav([tgd])
        )
