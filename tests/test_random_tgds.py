"""Property tests over randomly generated nested tgds.

These exercise the full pipeline (printer, parser, Skolemization, chase,
model checking, patterns, canonical instances) on tgds the test author never
wrote by hand.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core.canonical import canonical_instances
from repro.core.patterns import enumerate_k_patterns, full_pattern
from repro.engine.chase import chase_so_tgd
from repro.engine.homomorphism import find_homomorphism
from repro.engine.model_check import satisfies_nested
from repro.engine.nested_chase import chase_nested
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.parser import parse_nested_tgd
from repro.logic.values import Constant

from tests.strategies import SOURCE_RELATIONS, nested_tgds


CONSTANTS = [Constant(name) for name in "abc"]

source_facts = st.builds(
    Atom,
    st.sampled_from([name for name, __ in SOURCE_RELATIONS if name != "Q"]),
    st.tuples(st.sampled_from(CONSTANTS), st.sampled_from(CONSTANTS)),
)
q_facts = st.builds(Atom, st.just("Q"), st.tuples(st.sampled_from(CONSTANTS)))
source_instances = st.lists(
    st.one_of(source_facts, q_facts), min_size=0, max_size=5
).map(Instance)

SLOW = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestRandomNestedTgds:
    @settings(max_examples=60, **SLOW)
    @given(tgd=nested_tgds())
    def test_printer_parser_round_trip(self, tgd):
        assert parse_nested_tgd(repr(tgd)) == tgd

    @settings(max_examples=60, **SLOW)
    @given(tgd=nested_tgds())
    def test_skolemization_is_plain(self, tgd):
        assert tgd.skolemize().is_plain()

    @settings(max_examples=30, **SLOW)
    @given(tgd=nested_tgds(), source=source_instances)
    def test_chase_satisfies_the_tgd(self, tgd, source):
        forest = chase_nested(source, tgd)
        assert satisfies_nested(source, forest.instance, tgd)

    @settings(max_examples=30, **SLOW)
    @given(tgd=nested_tgds(), source=source_instances)
    def test_nested_chase_matches_skolemized_so_chase(self, tgd, source):
        nested_result = chase_nested(source, tgd).instance
        so_result = chase_so_tgd(source, tgd.skolemize())
        assert nested_result == so_result  # identical Skolem labels

    @settings(max_examples=30, **SLOW)
    @given(tgd=nested_tgds(), source=source_instances)
    def test_chase_tree_patterns_are_valid(self, tgd, source):
        forest = chase_nested(source, tgd)
        for pattern in forest.patterns():
            pattern.validate_against(tgd)

    @settings(max_examples=30, **SLOW)
    @given(tgd=nested_tgds(max_depth=2))
    def test_canonical_target_embeds_into_chase(self, tgd):
        for pattern in enumerate_k_patterns(tgd, 1, max_patterns=64):
            canon = canonical_instances(pattern, tgd)
            chased = chase_nested(canon.source, tgd).instance
            assert find_homomorphism(canon.target, chased) is not None

    @settings(max_examples=40, **SLOW)
    @given(tgd=nested_tgds(max_depth=2))
    def test_full_pattern_is_a_one_pattern(self, tgd):
        pattern = full_pattern(tgd)
        assert pattern.is_k_pattern(1)
        assert pattern in enumerate_k_patterns(tgd, 1, max_patterns=None)
