"""Tests for GLAV-equivalence of nested GLAV mappings (Theorems 4.2, 5.6)."""

import pytest

from repro.core.glav_equivalence import (
    glav_distance_report,
    is_equivalent_to_glav,
    pattern_tgd,
    to_glav,
)
from repro.core.implication import equivalent, implies
from repro.core.patterns import Pattern
from repro.errors import UndecidedError
from repro.logic.parser import parse_egd, parse_nested_tgd, parse_tgd
from repro.logic.tgds import STTgd


class TestDecision:
    def test_intro_nested_not_glav(self, intro_nested):
        """The paper's flagship example of nested > GLAV."""
        assert not is_equivalent_to_glav([intro_nested])

    def test_flat_mapping_is_glav(self):
        assert is_equivalent_to_glav([parse_tgd("S(x,y) -> R(x,z)")])

    def test_bounded_nested_is_glav(self):
        tgd = parse_nested_tgd("S1(x1) -> (S2(x2) -> T(x1, x2))")
        assert is_equivalent_to_glav([tgd])

    def test_example_415_nested_not_glav(self, nested_415):
        """Example 4.15's nested tgd separates nested from GLAV too."""
        assert not is_equivalent_to_glav([nested_415])

    def test_with_source_egds(self):
        """Theorem 5.6: the decision works relative to source egds, and egds
        can flip the answer."""
        tgd = parse_nested_tgd("Q(z) -> exists y . (P(z,x) -> R(y,x))")
        egd = parse_egd("P(z,x) & P(z,xp) -> x = xp")
        assert not is_equivalent_to_glav([tgd])
        assert is_equivalent_to_glav([tgd], source_egds=[egd])


class TestPatternTgds:
    def test_pattern_tgd_shape(self, intro_nested):
        tgd = pattern_tgd(Pattern(1, (Pattern(2),)), intro_nested)
        assert isinstance(tgd, STTgd)
        assert len(tgd.body) == 2  # S(x1,x2), S(x1,x3)
        assert len(tgd.head) == 2  # R(y,x2), R(y,x3)
        assert len(tgd.existential_variables) == 1

    def test_empty_target_pattern_gives_none(self, sigma_star):
        assert pattern_tgd(Pattern(1), sigma_star) is None

    def test_mapping_implies_its_pattern_tgds(self, intro_nested):
        """Universality: every pattern tgd is a consequence of the mapping."""
        for pattern in [
            Pattern(1),
            Pattern(1, (Pattern(2),)),
            Pattern(1, (Pattern(2), Pattern(2))),
        ]:
            induced = pattern_tgd(pattern, intro_nested)
            if induced is not None:
                assert implies([intro_nested], induced)


class TestConstruction:
    def test_to_glav_simple(self):
        tgd = parse_nested_tgd("S1(x1) -> (S2(x2) -> T(x1, x2))")
        glav = to_glav([tgd])
        assert all(isinstance(g, STTgd) for g in glav)
        assert equivalent(glav, [tgd])

    def test_to_glav_with_existential(self):
        tgd = parse_nested_tgd("S1(x1) -> (S2(x2) -> exists y . T(x1, x2, y))")
        glav = to_glav([tgd])
        assert equivalent(glav, [tgd])

    def test_to_glav_multi_branch(self):
        tgd = parse_nested_tgd(
            "S(x1,x2) -> exists y . (R(y,x2) & (P(x3) -> U(x3)))"
        )
        glav = to_glav([tgd])
        assert equivalent(glav, [tgd])

    def test_to_glav_unbounded_raises(self, intro_nested):
        with pytest.raises(UndecidedError):
            to_glav([intro_nested])

    def test_to_glav_with_egds(self):
        tgd = parse_nested_tgd("Q(z) -> exists y . (P(z,x) -> R(y,x))")
        egd = parse_egd("P(z,x) & P(z,xp) -> x = xp")
        glav = to_glav([tgd], source_egds=[egd])
        assert equivalent(glav, [tgd], source_egds=[egd])
        # without the egd they are NOT equivalent
        assert not equivalent(glav, [tgd])


class TestReport:
    def test_report_bounded(self):
        tgd = parse_nested_tgd("S1(x1) -> (S2(x2) -> T(x1, x2))")
        report = glav_distance_report([tgd])
        assert report["bounded_fblock_size"]
        assert report["equivalent_glav"] is not None

    def test_report_unbounded(self, intro_nested):
        report = glav_distance_report([intro_nested])
        assert not report["bounded_fblock_size"]
        assert report["equivalent_glav"] is None
        assert report["witness_pattern"] is not None
