"""Tests for GLAV unfoldings and the approximation gap."""

import pytest

from repro.core.implication import equivalent, implies
from repro.core.unfoldings import (
    approximation_gap,
    unfolding,
    unfolding_hierarchy_strict,
)
from repro.logic.parser import parse_nested_tgd, parse_tgd


class TestUnfoldingConstruction:
    def test_sizes_grow(self, intro_nested):
        # the root part alone already has a head atom R(y, x2)
        assert len(unfolding(intro_nested, 1)) == 1
        assert len(unfolding(intro_nested, 2)) == 2
        assert len(unfolding(intro_nested, 3)) == 3

    def test_nested_implies_every_unfolding(self, intro_nested):
        for n in (1, 2, 3):
            flat = unfolding(intro_nested, n)
            if flat:
                assert implies([intro_nested], flat)

    def test_flat_tgd_unfolds_to_itself(self):
        tgd = parse_tgd("S(x,y) -> R(x,z)").to_nested()
        flat = unfolding(tgd, 1)
        assert len(flat) == 1
        assert equivalent(flat, [tgd])


class TestApproximationGap:
    def test_unbounded_tgd_has_gaps_at_every_level(self, intro_nested):
        for n in (1, 2, 3):
            gap = approximation_gap(intro_nested, n)
            assert gap is not None
            assert gap.nested_core_size > 0

    def test_bounded_tgd_gap_closes(self):
        tgd = parse_nested_tgd("S1(x1) -> (S2(x2) -> T(x1, x2))")
        assert approximation_gap(tgd, 2) is None

    def test_gap_witness_is_genuine(self, intro_nested):
        from repro.engine.chase import chase
        from repro.engine.homomorphism import has_homomorphism

        gap = approximation_gap(intro_nested, 2)
        flat = unfolding(intro_nested, 2)
        assert not has_homomorphism(
            chase(gap.source, [intro_nested]), chase(gap.source, flat)
        )


class TestHierarchy:
    def test_unbounded_hierarchy_is_strict(self, intro_nested):
        strict = unfolding_hierarchy_strict(intro_nested, 3)
        assert all(strict[1:])  # from n=2 on, each level adds real strength

    def test_bounded_hierarchy_stabilizes(self):
        tgd = parse_nested_tgd("S1(x1) -> (S2(x2) -> T(x1, x2))")
        strict = unfolding_hierarchy_strict(tgd, 3)
        assert not strict[-1]  # stabilized: no more strength to add
