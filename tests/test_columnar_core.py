"""Differential suite for the id-space core engine and the SQL core pushdown.

Three interchangeable backends compute cores (``core(backend=...)``): the
seed tuple engine, the columnar id-space engine, and the SQL pushdown.  The
fold tie-breaks differ between engines (each may keep a different set of
representative facts), so the correctness bar is: **verdicts agree exactly**
(homomorphism existence, witness validity) and **cores agree up to
isomorphism** (the core is unique up to isomorphism; sizes agree exactly).

Also covered here: the shared persistent fold tier (fingerprints are
byte-identical across engines, so a fold written by one engine is a disk hit
for the other), the ``facts_of`` / ``facts_with`` decode memo counter, the
``choose_core_backend`` dispatch policy, and the ``repro core`` CLI.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings

import repro.cache
from repro import perf
from repro.engine.columnar import ColumnarInstance
from repro.engine.core_instance import clear_fold_cache, core, is_core
from repro.engine.dispatch import (
    CORE_COLUMNAR_AUTO_THRESHOLD,
    CORE_SQL_AUTO_THRESHOLD,
    choose_core_backend,
)
from repro.engine.hom_kernel import (
    block_homomorphism,
    block_homomorphism_generic,
    find_homomorphism_indexed,
)
from repro.engine.homomorphism import is_homomorphism
from repro.engine.sql_backend import sql_core, sql_core_supported
from repro.errors import ChaseError
from repro.logic.parser import parse_instance

from tests.strategies import instances


BACKENDS = ["tuple", "columnar", "sql"]


class TestHomKernelDifferential:
    """The id-space kernel agrees with the generic kernel on every draw."""

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(source=instances(max_facts=6), target=instances(max_facts=8))
    def test_same_verdict_and_valid_witness(self, source, target):
        generic = find_homomorphism_indexed(source, target)
        columnar = find_homomorphism_indexed(source, ColumnarInstance(target))
        assert (generic is None) == (columnar is None)
        if columnar is not None:
            assert is_homomorphism(columnar, source, target)

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(source=instances(max_facts=5, max_nulls=6, max_constants=2,
                            min_facts=1),
           target=instances(max_facts=8, max_nulls=6, max_constants=2))
    def test_nulls_heavy_draws_agree(self, source, target):
        generic = find_homomorphism_indexed(source, target)
        columnar = find_homomorphism_indexed(source, ColumnarInstance(target))
        assert (generic is None) == (columnar is None)
        if columnar is not None:
            assert is_homomorphism(columnar, source, target)

    def test_unsat_fails_fast_without_search(self):
        # No fact of the target can host R(_x, _x): propagation alone
        # refutes (an AC-3 wipeout), with zero search nodes expanded.
        source = parse_instance("R(_x,_x)")
        target = ColumnarInstance(parse_instance("R(a,b), R(b,c), R(c,a)"))
        with perf.measuring() as stats:
            assert block_homomorphism(source.facts, target) is None
        assert stats.get("hom.columnar.kernel_calls") == 1
        assert stats.get("hom.columnar.search_nodes") == 0

    def test_dispatch_by_target_type(self):
        # A columnar target routes to the id-space kernel; the same target
        # decoded through the FactIndex protocol gives the same verdict.
        source = parse_instance("R(a,_x)")
        target = ColumnarInstance(parse_instance("R(a,b)"))
        with perf.measuring() as stats:
            fast = block_homomorphism(source.facts, target)
            slow = block_homomorphism_generic(source.facts, target)
        assert fast is not None and slow is not None
        assert stats.get("hom.columnar.kernel_calls") == 1
        assert stats.get("hom.kernel_calls") == 1


class TestCoreDifferential:
    """Cores agree across backends: equal sizes, isomorphic instances."""

    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(instance=instances(max_facts=8))
    def test_three_backends_isomorphic(self, instance):
        clear_fold_cache()
        reference = core(instance, backend="tuple")
        for backend in ("columnar", "sql"):
            other = core(instance, backend=backend)
            assert len(other) == len(reference)
            assert other.isomorphic(reference)
            assert is_core(other)

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(instance=instances(max_facts=8, max_nulls=6, max_constants=2))
    def test_nulls_heavy_cores_isomorphic(self, instance):
        clear_fold_cache()
        reference = core(instance, backend="tuple")
        for backend in ("columnar", "sql"):
            assert core(instance, backend=backend).isomorphic(reference)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_canonical_examples(self, backend):
        assert core(parse_instance("R(a,_x), R(a,b)"), backend=backend) == \
            parse_instance("R(a,b)")
        c4 = parse_instance(
            "R(_1,_2), R(_2,_1), R(_2,_3), R(_3,_2), "
            "R(_3,_4), R(_4,_3), R(_4,_1), R(_1,_4)"
        )
        assert len(core(c4, backend=backend)) == 2
        triangle = parse_instance(
            "R(_1,_2), R(_2,_1), R(_2,_3), R(_3,_2), R(_3,_1), R(_1,_3)"
        )
        assert core(triangle, backend=backend) == triangle

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ground_and_empty(self, backend):
        ground = parse_instance("R(a,b), R(b,c)")
        assert core(ground, backend=backend) == ground
        assert core(parse_instance(""), backend=backend) == parse_instance("")

    def test_columnar_accepts_columnar_input(self):
        # A ColumnarInstance input is consumed in place (no re-encode).
        store = ColumnarInstance(parse_instance("R(a,_x), R(a,b)"))
        assert core(store, backend="columnar") == parse_instance("R(a,b)")

    def test_columnar_counters_flow(self):
        clear_fold_cache()
        with perf.measuring() as stats:
            core(parse_instance("R(a,_x), R(a,b), T(c,_y), T(c,d)"),
                 backend="columnar")
        assert stats.get("core.columnar.blocks") == 2
        assert stats.get("core.columnar.eliminations") == 2

    def test_sql_counters_flow(self):
        with perf.measuring() as stats:
            core(parse_instance("R(a,_x), R(a,b)"), backend="sql")
        assert stats.get("core.sql.blocks") == 1
        assert stats.get("core.sql.queries") >= 1
        assert stats.get("core.sql.eliminations") == 1


class TestSharedFoldTier:
    """Fingerprints are byte-identical, so the disk fold tier is shared."""

    @pytest.mark.parametrize("writer,reader",
                             [("tuple", "columnar"), ("columnar", "tuple")])
    def test_cross_engine_disk_hits(self, tmp_path, writer, reader):
        repro.cache.configure(tmp_path)
        instance = parse_instance("R(a,_x), R(a,_y), R(a,b)")
        expected = core(instance, backend=writer)
        clear_fold_cache()  # drop the in-memory memo; keep the disk tier
        with perf.measuring() as stats:
            result = core(instance, backend=reader)
        assert stats.get("cache.disk.hits") >= 1
        assert result.isomorphic(expected)

    def test_columnar_memo_hits_on_isomorphic_blocks(self):
        clear_fold_cache()
        # Two isomorphic blocks (same canonical form, different nulls)
        # anchored at different constants: the second is answered by the
        # fold memo / iso-duplicate pass without a second hom search.
        instance = parse_instance("R(a,_x), R(a,b), T(c,_y), T(c,_z), T(c,d)")
        with perf.measuring() as stats:
            core(instance, backend="columnar")
        assert stats.get("core.columnar.memo_misses") >= 1
        core_again = parse_instance("R(a,_w), R(a,f)")
        with perf.measuring() as stats:
            core(core_again, backend="columnar")
        assert stats.get("core.columnar.memo_hits") >= 1


class TestDecodeMemoCounter:
    """facts_of / facts_with probes hit the per-group decode memo."""

    def test_probe_hits_increment_on_repeat(self):
        store = ColumnarInstance(parse_instance("R(a,b), R(a,c), P(a)"))
        a = next(iter(store.facts_of("P"))).args[0]
        with perf.measuring() as stats:
            first = list(store.facts_with("R", 0, a))
            baseline = stats.get("backend.columnar.probe_hits")
            second = list(store.facts_with("R", 0, a))
            assert stats.get("backend.columnar.probe_hits") > baseline
        assert set(first) == set(second)
        with perf.measuring() as stats:
            list(store.facts_of("R"))
            baseline = stats.get("backend.columnar.probe_hits")
            list(store.facts_of("R"))
            assert stats.get("backend.columnar.probe_hits") > baseline


class TestChooseCoreBackend:
    def test_auto_small_is_tuple(self):
        choice = choose_core_backend("auto", input_size=10)
        assert choice.backend == "tuple" and choice.was_auto

    def test_auto_medium_is_columnar(self):
        choice = choose_core_backend(
            "auto", input_size=CORE_COLUMNAR_AUTO_THRESHOLD)
        assert choice.backend == "columnar"

    def test_auto_large_needs_sql_support(self):
        size = CORE_SQL_AUTO_THRESHOLD
        assert choose_core_backend(
            "auto", input_size=size, sql_supported=True).backend == "sql"
        assert choose_core_backend(
            "auto", input_size=size, sql_supported=False).backend == "columnar"

    def test_explicit_passthrough(self):
        for backend in BACKENDS:
            choice = choose_core_backend(
                backend, input_size=1, sql_supported=True)
            assert choice.backend == backend and not choice.was_auto

    def test_explicit_sql_unsupported_raises(self):
        with pytest.raises(ChaseError):
            choose_core_backend("sql", input_size=1, sql_supported=False)

    def test_unknown_backend_raises(self):
        with pytest.raises(ChaseError):
            choose_core_backend("vectorized", input_size=1)


class TestSqlCore:
    def test_supported_on_plain_instances(self):
        assert sql_core_supported(parse_instance("R(a,_x), R(a,b)"))

    def test_duckdb_explicit_requires_module(self):
        try:
            import duckdb  # noqa: F401
        except ModuleNotFoundError:
            pass
        else:
            pytest.skip("duckdb installed; the graceful-absence path is moot")
        with pytest.raises(ChaseError):
            sql_core(parse_instance("R(a,_x), R(a,b)"), use_duckdb=True)

    def test_duckdb_session_when_available(self):
        pytest.importorskip("duckdb")
        instance = parse_instance("R(a,_x), R(a,b), R(_y,b)")
        with perf.measuring() as stats:
            result = sql_core(instance, use_duckdb=True)
        assert stats.get("core.sql.duckdb_sessions") == 1
        assert result.isomorphic(core(instance, backend="tuple"))


class TestAnalyzerBackends:
    """Analyzers built on core() return identical verdicts on every backend."""

    @pytest.mark.parametrize("backend", BACKENDS + ["auto"])
    def test_cq_equivalent_backend_independent(self, backend):
        from repro.core.cq_equivalence import cq_equivalent
        from repro.logic.parser import parse_tgd

        a = [parse_tgd("S(x,y) -> exists z . R(x,z)")]
        b = [parse_tgd("S(x,y) -> exists w . R(x,w)")]
        c = [parse_tgd("S(x,y) -> R(x,y)")]
        assert bool(cq_equivalent(a, b, backend=backend))
        assert not bool(cq_equivalent(a, c, backend=backend))


class TestCoreCli:
    def _run(self, *argv, capsys):
        from repro.cli import main

        code = main(list(argv))
        return code, json.loads(capsys.readouterr().out)

    def test_report_shape(self, capsys):
        code, report = self._run(
            "core", "--instance", "R(a,_x), R(a,b), R(_y,b)", capsys=capsys)
        assert code == 0
        assert report["backend"] == "tuple" and report["requested"] == "auto"
        assert report["input_facts"] == 3 and report["core_facts"] == 1
        assert "reason" in report and "facts" not in report

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_core_size_backend_independent(self, backend, capsys):
        code, report = self._run(
            "core", "--backend", backend, "--facts",
            "--instance", "R(a,_x), R(a,b), T(c,_y), T(c,d)", capsys=capsys)
        assert code == 0
        assert report["backend"] == backend
        assert report["core_facts"] == 2 and len(report["facts"]) == 2

    def test_chase_then_core(self, capsys):
        code, report = self._run(
            "core", "--dep", "S(x,y) -> exists z . T(x,z)",
            "--instance", "S(a,b), S(a,c)", "--backend", "columnar",
            capsys=capsys)
        assert code == 0
        assert report["input_facts"] == 2 and report["core_facts"] == 1
