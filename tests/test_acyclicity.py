"""Tests for the chase-termination hierarchy (repro.analysis.acyclicity)."""

import pytest

from repro.analysis.acyclicity import (
    TerminationClass,
    TerminationVerdict,
    classify_termination,
    clear_acyclicity_cache,
    critical_instance,
    jointly_acyclic,
    model_faithful_acyclic,
    super_weakly_acyclic,
)
from repro.analysis.termination import dependency_graph_ir, termination_report
from repro.engine.fixpoint_chase import fixpoint_chase
from repro.errors import ChaseError
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.parser import parse_egd, parse_tgd
from repro.logic.values import Constant


# One witness set per rung of the hierarchy, each refuting all narrower rungs.
WA_SET = [parse_tgd("S(x,y) -> R(x,y)")]
JA_NOT_WA_SET = [parse_tgd("E(x,y) & E(y,x) -> exists z . E(y,z)")]
SWA_NOT_JA_SET = [
    parse_tgd("S(x) -> exists y, z . R(y,z) & R(z,y)"),
    parse_tgd("R(u,u) -> exists w . S(w)"),
]
MFA_NOT_SWA_SET = [
    parse_tgd("S(x) -> exists y . R(x,y)"),
    parse_tgd("R(x,y) & B(y) -> exists w . S(w)"),
]
DIVERGING_SET = [parse_tgd("E(x,y) -> exists z . E(y,z)")]


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_acyclicity_cache()
    yield
    clear_acyclicity_cache()


class TestLattice:
    def test_rank_order(self):
        ranks = [cls.rank for cls in TerminationClass]
        assert ranks == sorted(ranks)
        assert TerminationClass.WEAKLY_ACYCLIC < TerminationClass.JOINTLY_ACYCLIC
        assert (
            TerminationClass.SUPER_WEAKLY_ACYCLIC
            < TerminationClass.MODEL_FAITHFUL
            < TerminationClass.NOT_GUARANTEED
        )

    def test_guarantees_termination(self):
        for cls in TerminationClass:
            expected = cls is not TerminationClass.NOT_GUARANTEED
            assert cls.guarantees_termination is expected


class TestClassification:
    def test_weakly_acyclic(self):
        verdict = classify_termination(WA_SET)
        assert verdict.cls is TerminationClass.WEAKLY_ACYCLIC
        assert verdict.guarantees_termination
        assert verdict.depth_bound is not None

    def test_jointly_acyclic_not_weak(self):
        verdict = classify_termination(JA_NOT_WA_SET)
        assert verdict.cls is TerminationClass.JOINTLY_ACYCLIC
        assert not verdict.weak.weakly_acyclic
        assert verdict.depth_bound == 1

    def test_super_weakly_acyclic_not_jointly(self):
        verdict = classify_termination(SWA_NOT_JA_SET)
        assert verdict.cls is TerminationClass.SUPER_WEAKLY_ACYCLIC
        # the JA refutation is witnessed by a function cycle
        assert verdict.ja_cycle
        assert verdict.depth_bound == 2

    def test_model_faithful_not_super_weak(self):
        verdict = classify_termination(MFA_NOT_SWA_SET)
        assert verdict.cls is TerminationClass.MODEL_FAITHFUL
        assert verdict.ja_cycle and verdict.swa_cycle
        assert verdict.mfa_facts is not None
        assert verdict.depth_bound == 2

    def test_not_guaranteed_with_cyclic_term_witness(self):
        verdict = classify_termination(DIVERGING_SET)
        assert verdict.cls is TerminationClass.NOT_GUARANTEED
        assert not verdict.guarantees_termination
        assert verdict.mfa_conclusive
        # the MFA refutation exhibits a Skolem function nested below itself
        assert verdict.mfa_cyclic_term is not None
        assert verdict.mfa_cyclic_term.count("f_z") >= 2

    def test_single_dependency_accepted(self):
        verdict = classify_termination(JA_NOT_WA_SET[0])
        assert verdict.cls is TerminationClass.JOINTLY_ACYCLIC

    def test_egds_do_not_block_certification(self):
        verdict = classify_termination(WA_SET + [parse_egd("R(x,y) & R(x,z) -> y = z")])
        assert verdict.guarantees_termination

    def test_bool_protocol(self):
        assert classify_termination(WA_SET)
        assert not classify_termination(DIVERGING_SET)

    def test_to_dict_round_trips_class(self):
        payload = classify_termination(MFA_NOT_SWA_SET).to_dict()
        assert payload["class"] == "model-faithful-acyclic"
        assert payload["guarantees_termination"] is True
        assert payload["ja_cycle"] and payload["swa_cycle"]

    def test_verdicts_are_cached(self):
        first = classify_termination(SWA_NOT_JA_SET)
        second = classify_termination(SWA_NOT_JA_SET)
        assert first is second

    def test_inconclusive_mfa_budget(self):
        verdict = classify_termination(
            MFA_NOT_SWA_SET, mfa_max_facts=1, mfa_max_rounds=1
        )
        assert verdict.cls is TerminationClass.NOT_GUARANTEED
        assert not verdict.mfa_conclusive


class TestRungInternals:
    def test_jointly_acyclic_direct(self):
        assert jointly_acyclic(dependency_graph_ir(JA_NOT_WA_SET))[0]
        ok, cycle, _depth = jointly_acyclic(dependency_graph_ir(SWA_NOT_JA_SET))
        assert not ok and cycle

    def test_super_weakly_acyclic_direct(self):
        assert super_weakly_acyclic(dependency_graph_ir(SWA_NOT_JA_SET))[0]
        ok, cycle, _depth = super_weakly_acyclic(dependency_graph_ir(MFA_NOT_SWA_SET))
        assert not ok and cycle

    def test_containment_on_certified_sets(self):
        # every rung's witness set is admitted by all wider rungs
        ir = dependency_graph_ir(JA_NOT_WA_SET)
        assert jointly_acyclic(ir)[0]
        assert super_weakly_acyclic(ir)[0]
        assert model_faithful_acyclic(JA_NOT_WA_SET, ir)[0]
        ir = dependency_graph_ir(SWA_NOT_JA_SET)
        assert super_weakly_acyclic(ir)[0]
        assert model_faithful_acyclic(SWA_NOT_JA_SET, ir)[0]

    def test_critical_instance_covers_all_positions(self):
        ir = dependency_graph_ir(MFA_NOT_SWA_SET)
        inst = critical_instance(ir)
        relations = {fact.relation for fact in inst}
        assert relations == {"S", "R", "B"}
        assert all(arg == Constant("*") for fact in inst for arg in fact.args)

    def test_mfa_refutes_diverging(self):
        ir = dependency_graph_ir(DIVERGING_SET)
        ok, cyclic, _depth, facts = model_faithful_acyclic(DIVERGING_SET, ir)
        assert ok is False
        assert cyclic is not None and facts is not None


class TestEngineGate:
    """The acceptance criterion: certified-but-not-WA sets run unbounded."""

    def test_ja_set_rejected_by_weak_test_but_chases_unbounded(self):
        assert not termination_report(JA_NOT_WA_SET).weakly_acyclic
        a, b = Constant("a"), Constant("b")
        instance = Instance([Atom("E", (a, b)), Atom("E", (b, a))])
        result = fixpoint_chase(instance, JA_NOT_WA_SET)  # no max_rounds
        assert result.reached_fixpoint
        assert result.termination_class is TerminationClass.JOINTLY_ACYCLIC

    def test_mfa_set_chases_unbounded(self):
        instance = Instance([Atom("S", (Constant("a"),)), Atom("B", (Constant("b"),))])
        result = fixpoint_chase(instance, MFA_NOT_SWA_SET)
        assert result.reached_fixpoint
        assert result.termination_class is TerminationClass.MODEL_FAITHFUL

    def test_weakly_acyclic_class_reported(self):
        instance = Instance([Atom("S", (Constant("a"), Constant("b")))])
        result = fixpoint_chase(instance, WA_SET)
        assert result.termination_class is TerminationClass.WEAKLY_ACYCLIC

    def test_uncertified_still_refused_without_max_rounds(self):
        instance = Instance([Atom("E", (Constant("a"), Constant("b")))])
        with pytest.raises(ChaseError) as excinfo:
            fixpoint_chase(instance, DIVERGING_SET)
        message = str(excinfo.value)
        assert "TD001" in message and "max_rounds" in message

    def test_uncertified_allowed_with_max_rounds(self):
        instance = Instance([Atom("E", (Constant("a"), Constant("b")))])
        result = fixpoint_chase(instance, DIVERGING_SET, max_rounds=3)
        assert not result.reached_fixpoint
        assert result.termination_class is None
