"""Property tests for the hash-consing layer (:mod:`repro.logic.intern`).

The logic stack interns :class:`Constant` / :class:`Null` / :class:`Variable`
/ :class:`FuncTerm` / :class:`Atom` / :class:`Pattern`: structurally equal
objects are the *same* object.  The invariants under test:

- ``a == b``  iff  ``a is b``  (equality is pointer identity),
- interning is stable under rebuilding (``with_extra_clone`` /
  ``with_extra_child`` return trees whose untouched subtrees are the
  original objects),
- pickling round-trips *through* the intern table (a loaded copy is the
  original object), so fork/pickle-based parallelism cannot duplicate nodes,
- the cached hash agrees with the structural hash the pre-interning
  dataclasses used, so mixed containers keep working.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.logic import intern
from repro.logic.atoms import Atom
from repro.logic.terms import FuncTerm
from repro.logic.values import Constant, Null, Variable
from repro.core.patterns import Pattern

from tests.strategies import nested_tgds, patterns


names = st.text(alphabet="abcxyz01", min_size=1, max_size=4)


@st.composite
def terms(draw, depth: int = 2):
    if depth == 0 or draw(st.booleans()):
        kind = draw(st.sampled_from([Constant, Null, Variable]))
        return kind(draw(names))
    args = tuple(draw(terms(depth=depth - 1)) for __ in range(draw(st.integers(0, 2))))
    return FuncTerm(draw(names), args)


@st.composite
def atoms(draw):
    args = tuple(draw(terms()) for __ in range(draw(st.integers(0, 3))))
    return Atom(draw(names).upper(), args)


# ------------------------------------------------------ equality is identity


@given(names, names)
def test_leaf_equality_is_identity(a, b):
    for kind in (Constant, Null, Variable):
        left, right = kind(a), kind(b)
        assert (left == right) == (left is right)
        assert (a == b) == (left is right)


@given(terms(), terms())
def test_term_equality_is_identity(left, right):
    assert (left == right) == (left is right)


@given(atoms(), atoms())
def test_atom_equality_is_identity(left, right):
    assert (left == right) == (left is right)


@settings(max_examples=50)
@given(patterns(), patterns())
def test_pattern_equality_is_identity(first, second):
    __, left, __k = first
    __, right, __k2 = second
    assert (left == right) == (left is right)


def test_distinct_kinds_never_identified():
    # Constant("a"), Null("a"), Variable("a") live in separate tables.
    values = [Constant("a"), Null("a"), Variable("a")]
    assert len({id(v) for v in values}) == 3
    assert len(set(map(repr, values))) == 3


# --------------------------------------------------------- rebuild stability


@settings(max_examples=50)
@given(patterns(max_nodes=5))
def test_intern_stable_across_with_extra_child(drawn):
    tgd, pattern, k = drawn
    for node in pattern.subtrees():
        choices = tgd.children_of(node.part_id)
        if not choices:
            continue
        extended = pattern.with_extra_child((), pattern.children[0].part_id) \
            if pattern.children else None
        break
    # Rebuilding the same structure twice yields the same object, and the
    # untouched children of an extension are the original child objects.
    rebuilt = Pattern(pattern.part_id, pattern.children)
    assert rebuilt is pattern
    if pattern.children:
        grown = pattern.with_extra_child((), pattern.children[0].part_id)
        for child in pattern.children:
            assert any(c is child for c in grown.children)


def test_intern_stable_across_with_extra_clone():
    p = Pattern(1, (Pattern(2, (Pattern(3),)), Pattern(4)))
    cloned = p.with_extra_clone((0,))
    # the cloned subtree is the *same* object as the original subtree
    sub = next(c for c in p.children if c.part_id == 2)
    assert sum(1 for c in cloned.children if c is sub) == 2
    # and re-cloning reproduces the identical interned pattern
    assert p.with_extra_clone((0,)) is cloned


# ---------------------------------------------------------- pickle re-intern


@given(terms())
def test_term_pickle_reinterns(term):
    assert pickle.loads(pickle.dumps(term)) is term


@given(atoms())
def test_atom_pickle_reinterns(atom):
    assert pickle.loads(pickle.dumps(atom)) is atom


@settings(max_examples=50)
@given(patterns())
def test_pattern_pickle_reinterns(drawn):
    __, pattern, __k = drawn
    assert pickle.loads(pickle.dumps(pattern)) is pattern


# ------------------------------------------------------------- hash parity


@given(names)
def test_leaf_hash_matches_dataclass_hash(name):
    # the pre-interning frozen dataclasses hashed their field tuple
    assert hash(Constant(name)) == hash((name,))
    assert hash(Variable(name)) == hash((name,))


@given(terms())
def test_func_term_hash_matches_dataclass_hash(term):
    if isinstance(term, FuncTerm):
        assert hash(term) == hash((term.function, term.args))


@given(atoms())
def test_atom_hash_matches_dataclass_hash(atom):
    assert hash(atom) == hash((atom.relation, atom.args))


# ------------------------------------------------------------ immutability


def test_interned_objects_are_immutable():
    for obj in (Constant("c"), FuncTerm("f", (Constant("c"),)),
                Atom("R", (Constant("c"),)), Pattern(1)):
        with pytest.raises(AttributeError):
            obj.name = "x"  # type: ignore[union-attr]


# ------------------------------------------------------------- perf counters


def test_intern_stats_flow_to_perf():
    from repro import perf

    intern.publish_stats()  # drain anything earlier tests accumulated
    baseline = perf.snapshot()
    first = Constant("intern-stats-probe")   # miss (tables are weak: keep a ref)
    second = Constant("intern-stats-probe")  # hit
    assert first is second
    published = intern.publish_stats()
    assert published["hits"] >= 1
    after = perf.snapshot()
    assert after.get("intern.hits", 0) - baseline.get("intern.hits", 0) >= 1


@settings(max_examples=25)
@given(nested_tgds())
def test_nested_tgd_atoms_are_interned(tgd):
    # every atom reachable from a drawn tgd is the interned representative
    for part_id in tgd.part_ids():
        for atom in tgd.part(part_id).body:
            assert Atom(atom.relation, atom.args) is atom
