"""Tests for the SQL compiler: generated SQL executes the oblivious chase."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.engine.chase import chase
from repro.errors import DependencyError
from repro.export.sql import (
    compile_mapping_to_sql,
    execute_exchange,
    render_instance_values,
    schema_ddl,
)
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.parser import parse_instance, parse_nested_tgd, parse_tgd
from repro.logic.schema import Schema
from repro.logic.values import Constant

from tests.strategies import SOURCE_RELATIONS, nested_tgds


class TestCompilation:
    def test_copy_tgd(self):
        [statement] = compile_mapping_to_sql([parse_tgd("S(x,y) -> R(y,x)")])
        assert statement == "INSERT INTO R SELECT DISTINCT a0.c1, a0.c0 FROM S AS a0"

    def test_join_produces_where(self):
        [statement] = compile_mapping_to_sql(
            [parse_tgd("S(x,y) & S(y,z) -> R(x,z)")]
        )
        assert "WHERE" in statement
        assert {"a0.c1", "a1.c0"} <= set(statement.replace("=", " ").split())

    def test_skolem_term_concatenation(self):
        [statement] = compile_mapping_to_sql([parse_tgd("S(x,y) -> R(x,z)")])
        assert "||" in statement and "f_z(" in statement

    def test_nested_tgd_one_statement_per_head_atom(self, sigma_star):
        statements = compile_mapping_to_sql([sigma_star])
        assert len(statements) == 3  # parts 2, 3, 4 each have one head atom

    def test_repeated_variable_in_one_atom(self):
        [statement] = compile_mapping_to_sql([parse_tgd("S(x,x) -> P(x)")])
        assert "WHERE a0.c1 = a0.c0" in statement

    def test_ddl(self):
        assert schema_ddl(Schema([("S", 2), ("Q", 1)])) == [
            "CREATE TABLE S (c0 TEXT, c1 TEXT)",
            "CREATE TABLE Q (c0 TEXT)",
        ]

    def test_injection_resistant_identifiers(self):
        with pytest.raises(DependencyError):
            schema_ddl(Schema([("S; DROP TABLE x", 1)]))


class TestExecution:
    CASES = [
        ([parse_tgd("S(x,y) -> R(y,x)")], "S(a,b), S(b,c)"),
        ([parse_tgd("S(x,y) -> R(x,z) & T(z,y)")], "S(a,b)"),
        ([parse_tgd("S(x,y) & S(y,z) -> R(x,z)")], "S(a,b), S(b,c), S(c,d)"),
        (
            [parse_nested_tgd("S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))")],
            "S(a,b), S(a,c)",
        ),
        (
            [parse_nested_tgd(
                "Customer(c, n) -> exists y . (Account(y, n) & (Ord(c, i) -> Purchase(y, i)))"
            )],
            "Customer(c1, alice), Ord(c1, book), Ord(c1, pen)",
        ),
    ]

    @pytest.mark.parametrize("deps,source_text", CASES)
    def test_sql_equals_chase(self, deps, source_text):
        source = parse_instance(source_text)
        via_sql = execute_exchange(source, deps)
        via_chase = render_instance_values(chase(source, deps))
        # Skolem label prefixes differ between the compiler and the chase
        # dispatcher, so compare up to null renaming.
        assert via_sql.isomorphic(via_chase)

    def test_shared_nulls_preserved(self):
        """The correlation: both purchases get the SAME generated account key."""
        nested = parse_nested_tgd(
            "Customer(c, n) -> exists y . (Account(y, n) & (Ord(c, i) -> Purchase(y, i)))"
        )
        source = parse_instance("Customer(c1, alice), Ord(c1, book), Ord(c1, pen)")
        result = execute_exchange(source, [nested])
        accounts = {f.args[0] for f in result.facts_of("Account")}
        purchase_keys = {f.args[0] for f in result.facts_of("Purchase")}
        assert accounts == purchase_keys
        assert len(accounts) == 1

    def test_empty_source(self):
        result = execute_exchange(parse_instance(""), [parse_tgd("S(x) -> R(x)")])
        assert len(result) == 0

    def test_quote_in_constant_handled(self):
        source = Instance([Atom("S", (Constant("o'brien"), Constant("b")))])
        result = execute_exchange(source, [parse_tgd("S(x,y) -> R(x)")])
        expected = render_instance_values(chase(source, [parse_tgd("S(x,y) -> R(x)")]))
        assert result.isomorphic(expected)


class TestPropertySQLvsChase:
    CONSTANTS = [Constant(c) for c in "abc"]

    source_facts = st.builds(
        Atom,
        st.sampled_from([n for n, a in SOURCE_RELATIONS if a == 2]),
        st.tuples(st.sampled_from(CONSTANTS), st.sampled_from(CONSTANTS)),
    )
    q_facts = st.builds(
        Atom, st.just("Q"), st.tuples(st.sampled_from(CONSTANTS))
    )
    sources = st.lists(st.one_of(source_facts, q_facts), max_size=5).map(Instance)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(tgd=nested_tgds(max_depth=2), source=sources)
    def test_random_mapping_sql_equals_chase(self, tgd, source):
        via_sql = execute_exchange(source, [tgd])
        via_chase = render_instance_values(chase(source, [tgd]))
        assert via_sql.isomorphic(via_chase)
