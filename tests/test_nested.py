"""Tests for nested tgds: structure, validation, navigation, Skolemization.

The running example is the four-part tgd (*) of Section 2 of the paper, for
which the paper states: parent(s2) = parent(s3) = s1, parent(s4) = s3,
anc(s4) = {s1, s3}, child(s1) = {s2, s3}, desc(s1) = {s2, s3, s4}, and the
Skolemized form uses f(x1) and g(x1, x3, x4).
"""

import pytest

from repro.errors import DependencyError
from repro.logic.atoms import Atom
from repro.logic.nested import NestedTgd, Part, nested_tgds_from
from repro.logic.parser import parse_nested_tgd, parse_tgd
from repro.logic.terms import FuncTerm
from repro.logic.values import Variable


class TestPaperStructure:
    def test_part_count_and_depth(self, sigma_star):
        assert sigma_star.part_count == 4
        assert sigma_star.depth() == 3

    def test_parent_relation(self, sigma_star):
        assert sigma_star.parent(1) is None
        assert sigma_star.parent(2) == 1
        assert sigma_star.parent(3) == 1
        assert sigma_star.parent(4) == 3

    def test_ancestors(self, sigma_star):
        assert sigma_star.ancestors(4) == (1, 3)
        assert sigma_star.ancestors(1) == ()

    def test_children(self, sigma_star):
        assert set(sigma_star.children_of(1)) == {2, 3}
        assert sigma_star.children_of(3) == (4,)
        assert sigma_star.children_of(2) == ()

    def test_descendants(self, sigma_star):
        assert set(sigma_star.descendants(1)) == {2, 3, 4}
        assert sigma_star.descendants(4) == ()

    def test_variable_counts(self, sigma_star):
        assert sigma_star.universal_variable_count() == 4
        assert sigma_star.skolem_function_count() == 2

    def test_inherited_variables(self, sigma_star):
        x1, x3 = Variable("x1"), Variable("x3")
        assert sigma_star.inherited_universal_vars(4) == (x1, x3)
        assert sigma_star.inherited_universal_vars(1) == ()


class TestSkolemization:
    def test_skolem_term_scopes_match_paper(self, sigma_star):
        """y1 -> f(x1); y2 -> g(x1, x3, x4), per the paper's Skolemized form."""
        y1, y2 = Variable("y1"), Variable("y2")
        x1, x3, x4 = Variable("x1"), Variable("x3"), Variable("x4")
        assert sigma_star.skolem_term(y1).args == (x1,)
        assert sigma_star.skolem_term(y2).args == (x1, x3, x4)

    def test_skolemized_nested_tgd_is_plain_so_tgd(self, sigma_star):
        so = sigma_star.skolemize()
        assert so.is_plain()
        # one clause per part with a non-empty head (part 1 has no own head)
        assert len(so.clauses) == 3

    def test_skolemize_with_prefix_renames_functions(self, sigma_star):
        so = sigma_star.skolemize(function_prefix="p_")
        assert all(f.startswith("p_") for f in so.functions)

    def test_clause_bodies_accumulate_ancestor_bodies(self, sigma_star):
        so = sigma_star.skolemize()
        relations = [sorted({a.relation for a in c.body}) for c in so.clauses]
        assert ["S1", "S2"] in relations
        assert ["S1", "S3", "S4"] in relations


class TestValidation:
    def test_safety_violated(self):
        # universal variable of the part must occur in the part's own body
        part = Part(
            universal_vars=(Variable("x"),),
            body=(Atom("S", (Variable("y"),)),),
            exist_vars=(),
            head=(Atom("R", (Variable("x"),)),),
        )
        outer = Part(
            universal_vars=(Variable("y"),),
            body=(Atom("T", (Variable("y"),)),),
            exist_vars=(),
            head=(),
            children=(part,),
        )
        with pytest.raises(DependencyError):
            NestedTgd(outer)

    def test_existential_variable_in_body_rejected(self):
        with pytest.raises(DependencyError):
            parse_nested_tgd("S(x) -> exists y . (T(y) -> R(x))")

    def test_shadowing_rejected(self):
        inner = Part(
            universal_vars=(Variable("x"),),
            body=(Atom("S2", (Variable("x"),)),),
            exist_vars=(),
            head=(Atom("R", (Variable("x"),)),),
        )
        outer = Part(
            universal_vars=(Variable("x"),),
            body=(Atom("S1", (Variable("x"),)),),
            exist_vars=(),
            head=(),
            children=(inner,),
        )
        with pytest.raises(DependencyError):
            NestedTgd(outer)

    def test_empty_body_rejected(self):
        part = Part(universal_vars=(), body=(), exist_vars=(), head=())
        with pytest.raises(DependencyError):
            NestedTgd(part)

    def test_out_of_scope_head_variable_rejected(self):
        part = Part(
            universal_vars=(Variable("x"),),
            body=(Atom("S", (Variable("x"),)),),
            exist_vars=(),
            head=(Atom("R", (Variable("w"),)),),
        )
        with pytest.raises(DependencyError):
            NestedTgd(part)

    def test_shared_source_target_relation_rejected(self):
        with pytest.raises(DependencyError):
            parse_nested_tgd("S(x) -> S(x)")


class TestConversions:
    def test_flat_nested_tgd_round_trips(self):
        tgd = parse_tgd("S(x,y) -> R(x,z)")
        assert tgd.to_nested().to_st_tgd() == tgd

    def test_non_flat_cannot_convert(self, intro_nested):
        with pytest.raises(DependencyError):
            intro_nested.to_st_tgd()

    def test_nested_tgds_from_mixed(self, intro_nested):
        tgds = nested_tgds_from([parse_tgd("S(x) -> R(x)"), intro_nested])
        assert all(isinstance(t, NestedTgd) for t in tgds)
        assert tgds[0].is_flat() and not tgds[1].is_flat()

    def test_nested_tgds_from_rejects_so_tgds(self, so_tgd_413):
        with pytest.raises(DependencyError):
            nested_tgds_from([so_tgd_413])


class TestEquality:
    def test_equal_structure_equal_tgd(self):
        left = parse_nested_tgd("S(x) -> (T(y) -> R(x,y))")
        right = parse_nested_tgd("S(x) -> (T(y) -> R(x,y))")
        assert left == right
        assert hash(left) == hash(right)

    def test_different_structure_not_equal(self):
        left = parse_nested_tgd("S(x) -> (T(y) -> R(x,y))")
        right = parse_nested_tgd("S(x) & T(y) -> R(x,y)")
        assert left != right
