"""Differential tests for the delta-driven engine and the parallel sweep.

The incremental engines (InstanceBuilder-backed chases, the semi-naive egd
fixpoint, the memoized nested chase) must agree with the seed baselines kept
in :mod:`repro.engine.naive`, and the parallel `implies_tgd` sweep must agree
with the serial one -- including the failing-pattern diagnostics.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import perf
from repro.core.implication import clear_chase_cache, implies_tgd
from repro.engine.builder import InstanceBuilder
from repro.engine.chase import chase
from repro.engine.egd_chase import chase_egds, satisfies_egds
from repro.engine.matching import find_matches
from repro.engine.naive import chase_egds_naive, standard_chase_naive
from repro.engine.standard_chase import standard_chase
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.parser import parse_egd, parse_instance, parse_nested_tgd, parse_tgd
from repro.logic.values import Constant
from repro.workloads.generators import random_instance

from tests.strategies import SOURCE_RELATIONS, nested_tgds


random_sources = st.integers(0, 10_000).map(
    lambda seed: random_instance(SOURCE_RELATIONS, fact_count=8, domain_size=4, seed=seed)
)


class TestInstanceBuilder:
    def test_add_and_freeze_matches_instance(self):
        inst = parse_instance("S(a,b), S(b,c), Q(a)")
        builder = InstanceBuilder()
        delta = builder.add_all(inst)
        assert len(delta) == 3
        frozen = builder.freeze()
        assert frozen == inst
        assert frozen.facts_of("S") == inst.facts_of("S") or set(
            frozen.facts_of("S")
        ) == set(inst.facts_of("S"))
        assert frozen.nulls() == inst.nulls()
        assert frozen.constants() == inst.constants()

    def test_add_is_idempotent(self):
        builder = InstanceBuilder(parse_instance("S(a,b)"))
        fact = next(iter(parse_instance("S(a,b)")))
        assert not builder.add(fact)
        assert len(builder) == 1

    def test_discard_maintains_indexes(self):
        inst = parse_instance("S(a,b), S(a,c)")
        builder = InstanceBuilder(inst)
        fact = next(f for f in inst if f.args[1] == Constant("b"))
        assert builder.discard(fact)
        assert not builder.discard(fact)
        assert len(builder.facts_with("S", 0, Constant("a"))) == 1
        assert builder.facts_containing(Constant("b")) == frozenset()
        assert Constant("b") not in builder.active_domain()
        assert builder.freeze() == parse_instance("S(a,c)")

    def test_freeze_is_snapshot(self):
        builder = InstanceBuilder(parse_instance("S(a,b)"))
        frozen = builder.freeze()
        builder.add_all(parse_instance("S(b,c)"))
        assert len(frozen) == 1
        assert len(builder.freeze()) == 2

    def test_matching_runs_against_builder(self):
        builder = InstanceBuilder(parse_instance("S(a,b), S(b,c)"))
        matches = list(find_matches(parse_instance("S(a,b)").facts_of("S"), builder))
        assert len(matches) == 1

    @settings(max_examples=30, deadline=None)
    @given(source=random_sources)
    def test_builder_roundtrip_random(self, source):
        assert InstanceBuilder(source).freeze() == source


class TestStandardChaseAgreesWithSeed:
    TGDS = [
        parse_tgd("S(x,y) -> R(x,y)"),
        parse_tgd("S(x,y) -> R(x,z)"),
        parse_tgd("S(x,y) & S(y,z) -> R(x,w) & P(w)"),
    ]

    @settings(max_examples=25, deadline=None)
    @given(source=random_sources)
    def test_identical_results(self, source):
        assert standard_chase(source, self.TGDS) == standard_chase_naive(
            source, self.TGDS
        )


class TestEgdChaseAgreesWithSeed:
    EGDS = [
        parse_egd("S(z,x) & S(z,y) -> x = y"),
        parse_egd("T(x,y) & T(y,x) -> x = y"),
    ]

    @settings(max_examples=40, deadline=None)
    @given(source=random_sources)
    def test_identical_fixpoints(self, source):
        fast, fast_eq = chase_egds(source, self.EGDS, allow_constant_merge=True)
        slow, slow_eq = chase_egds_naive(source, self.EGDS, allow_constant_merge=True)
        assert fast == slow
        assert fast_eq == slow_eq
        assert satisfies_egds(fast, self.EGDS)

    def test_cascading_chain_merges(self):
        # A merge cascade n rounds deep: two parallel successor chains off one
        # root; the round-i merge x_i = y_i is what makes the round-(i+1)
        # match S(x_i, x_{i+1}) & S(x_i, y_{i+1}) appear at all.
        n = 12
        facts = [
            Atom("S", (Constant("root"), Constant("x1"))),
            Atom("S", (Constant("root"), Constant("y1"))),
        ]
        for i in range(1, n):
            facts.append(Atom("S", (Constant(f"x{i}"), Constant(f"x{i + 1}"))))
            facts.append(Atom("S", (Constant(f"y{i}"), Constant(f"y{i + 1}"))))
        source = Instance(facts)
        egd = [parse_egd("S(z,x) & S(z,y) -> x = y")]
        with perf.measuring() as stats:
            fast, fast_eq = chase_egds(source, egd, allow_constant_merge=True)
        slow, slow_eq = chase_egds_naive(source, egd, allow_constant_merge=True)
        assert fast == slow
        assert fast_eq == slow_eq
        assert len(fast) == n  # the two chains zipped into one
        # x_i and y_i collapsed at every level, one fixpoint round per level
        assert all(fast_eq[Constant(f"x{i}")] == fast_eq[Constant(f"y{i}")]
                   for i in range(1, n + 1))
        assert stats.get("chase.rounds") >= n


class TestNestedChaseAgreement:
    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(tgd=nested_tgds(max_depth=3, max_children=2), source=random_sources)
    def test_memoized_chase_isomorphic_to_sotgd_chase(self, tgd, source):
        """The memoized nested chase equals the chase of the Skolemized SO tgd
        (a memoization-free code path) on random mappings."""
        from repro.engine.chase import _rename_functions_apart, chase_so_tgd

        via_nested = chase(source, [tgd])
        via_so = chase_so_tgd(source, _rename_functions_apart(tgd.skolemize(), "d0_"))
        assert via_nested == via_so or via_nested.isomorphic(via_so)


class TestParallelImpliesAgreesWithSerial:
    PAIRS = [
        ([parse_tgd("S2(x2) -> exists z . R(x2, z)")],
         parse_nested_tgd("S1(x1) -> exists y . (S2(x2) -> R(x2, y))")),
        ([parse_tgd("S1(x1) & S2(x2) -> R(x2, x1)")],
         parse_nested_tgd("S1(x1) -> exists y . (S2(x2) -> R(x2, y))")),
        ([parse_tgd("S(x,y) -> exists z . R(x,z)")],
         parse_nested_tgd("S(x,y) -> R(x,y)")),
        ([parse_nested_tgd(
            "S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))")],
         parse_nested_tgd("S(u1,u2) -> exists w . (R(w,u2) & (S(u1,u3) -> R(w,u3)))")),
    ]

    @pytest.mark.parametrize("lhs,rhs", PAIRS)
    def test_verdict_and_diagnostics_agree(self, lhs, rhs):
        serial = implies_tgd(lhs, rhs)
        parallel = implies_tgd(lhs, rhs, parallel=2)
        assert serial.holds == parallel.holds
        assert serial.k == parallel.k
        assert serial.patterns_checked == parallel.patterns_checked
        assert serial.failing_pattern == parallel.failing_pattern
        assert serial.counterexample_source == parallel.counterexample_source
        assert serial.counterexample_target == parallel.counterexample_target


class TestChaseCache:
    def test_second_sweep_hits_cache(self):
        lhs = [parse_tgd("S1(x1) & S2(x2) -> R(x2, x1)")]
        rhs = parse_nested_tgd("S1(x1) -> exists y . (S2(x2) -> R(x2, y))")
        clear_chase_cache()
        with perf.measuring() as stats:
            first = implies_tgd(lhs, rhs)
            assert stats.get("implies.cache_hits") == 0
            second = implies_tgd(lhs, rhs)
        assert first.holds and second.holds
        assert stats.get("implies.cache_hits") == second.patterns_checked
        assert stats.get("implies.cache_misses") == first.patterns_checked

    def test_cache_distinguishes_sigma(self):
        rhs = parse_nested_tgd("S1(x1) -> exists y . (S2(x2) -> R(x2, y))")
        good = [parse_tgd("S1(x1) & S2(x2) -> R(x2, x1)")]
        bad = [parse_tgd("S2(x2) -> exists z . R(x2, z)")]
        clear_chase_cache()
        assert implies_tgd(good, rhs).holds
        assert not implies_tgd(bad, rhs).holds
        # and the other order, with a warm cache
        assert not implies_tgd(bad, rhs).holds
        assert implies_tgd(good, rhs).holds


class TestPerfCounters:
    def test_egd_chase_records_rounds_and_deltas(self):
        egd = [parse_egd("S(z,x) & S(z,y) -> x = y")]
        source = parse_instance("S(a,b), S(a,c), S(b,d), S(c,e)")
        with perf.measuring() as stats:
            chased, __ = chase_egds(source, egd, allow_constant_merge=True)
        assert satisfies_egds(chased, egd)
        assert stats.get("chase.rounds") >= 2
        assert stats.get("chase.delta_facts") >= 1

    def test_standard_chase_records_triggers(self):
        with perf.measuring() as stats:
            standard_chase(parse_instance("S(a,b), S(b,c)"),
                           [parse_tgd("S(x,y) -> R(x,y)")])
        assert stats.get("chase.triggers") == 2
