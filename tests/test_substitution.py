"""Tests for Substitution."""

import pytest

from repro.logic.atoms import Atom
from repro.logic.substitution import Substitution
from repro.logic.terms import FuncTerm
from repro.logic.values import Constant, Variable


X, Y = Variable("x"), Variable("y")
A, B = Constant("a"), Constant("b")


class TestMappingInterface:
    def test_getitem_and_len(self):
        sub = Substitution({X: A})
        assert sub[X] == A
        assert len(sub) == 1

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            Substitution({})[X]

    def test_equality_with_dict(self):
        assert Substitution({X: A}) == {X: A}

    def test_hashable(self):
        assert hash(Substitution({X: A})) == hash(Substitution({X: A}))


class TestOperations:
    def test_extend_overrides(self):
        sub = Substitution({X: A}).extend({X: B, Y: A})
        assert sub[X] == B and sub[Y] == A

    def test_extend_does_not_mutate(self):
        original = Substitution({X: A})
        original.extend({Y: B})
        assert Y not in original

    def test_restrict(self):
        sub = Substitution({X: A, Y: B}).restrict([X])
        assert X in sub and Y not in sub

    def test_apply_atom(self):
        sub = Substitution({X: A})
        assert sub.apply_atom(Atom("S", (X, Y))) == Atom("S", (A, Y))

    def test_apply_atoms(self):
        sub = Substitution({X: A, Y: B})
        result = sub.apply_atoms([Atom("S", (X,)), Atom("T", (Y,))])
        assert result == (Atom("S", (A,)), Atom("T", (B,)))

    def test_apply_term(self):
        sub = Substitution({X: A})
        assert sub.apply_term(FuncTerm("f", (X,))) == FuncTerm("f", (A,))

    def test_as_dict_is_a_copy(self):
        sub = Substitution({X: A})
        d = sub.as_dict()
        d[Y] = B
        assert Y not in sub
