"""Tests for the decision procedure IMPLIES (Theorems 3.1, 5.7)."""

import pytest

from repro.core.implication import (
    equivalent,
    implication_bound,
    implies,
    implies_tgd,
)
from repro.errors import DependencyError
from repro.logic.parser import parse_egd, parse_nested_tgd, parse_so_tgd, parse_tgd


class TestExample310:
    """The paper's worked Example 3.10."""

    def test_tau_prime_does_not_imply_tau(self, tau_310, tau_prime_310):
        result = implies_tgd([tau_prime_310], tau_310)
        assert not result.holds
        assert result.k == 2  # v=1, w=1

    def test_tau_double_prime_implies_tau(self, tau_310, tau_dprime_310):
        result = implies_tgd([tau_dprime_310], tau_310)
        assert result.holds
        assert result.k == 3  # v=1, w=2

    def test_counterexample_is_genuine(self, tau_310, tau_prime_310):
        """The failing pattern's canonical source witnesses non-implication."""
        from repro.engine.chase import chase
        from repro.engine.homomorphism import has_homomorphism

        result = implies_tgd([tau_prime_310], tau_310)
        I = result.counterexample_source
        assert not has_homomorphism(chase(I, [tau_310]), chase(I, [tau_prime_310]))


class TestBasicImplications:
    def test_self_implication(self, intro_nested):
        assert implies([intro_nested], intro_nested)

    def test_stronger_implies_weaker(self):
        strong = parse_tgd("S(x,y) -> R(x,y)")
        weak = parse_tgd("S(x,y) -> R(x,z)")
        assert implies([strong], weak)
        assert not implies([weak], strong)

    def test_conjunction_of_tgds(self):
        sigma = [parse_tgd("S(x,y) -> P(x)"), parse_tgd("S(x,y) -> Q(y)")]
        both = parse_tgd("S(x,y) -> P(x) & Q(y)")
        assert implies(sigma, both)
        assert implies([both], sigma)

    def test_nested_implies_its_flat_parts(self, intro_nested):
        flat1 = parse_tgd("S(x1,x2) -> exists y . R(y, x2)")
        flat2 = parse_tgd("S(x1,x2) & S(x1,x3) -> exists y . (R(y,x2) & R(y,x3))")
        assert implies([intro_nested], flat1)
        assert implies([intro_nested], flat2)

    def test_flat_parts_do_not_imply_nested(self, intro_nested):
        """The intro nested tgd is strictly stronger than any of its finite
        unfoldings (it is not GLAV-expressible)."""
        flat2 = parse_tgd("S(x1,x2) & S(x1,x3) -> exists y . (R(y,x2) & R(y,x3))")
        assert not implies([flat2], intro_nested)

    def test_irrelevant_tgd_does_not_imply(self):
        assert not implies([parse_tgd("T(x) -> R(x,x)")], parse_tgd("S(x) -> P(x)"))


class TestEquivalence:
    def test_reordered_body_equivalent(self):
        left = parse_tgd("S(x,y) & T(y,z) -> R(x,z)")
        right = parse_tgd("T(y,z) & S(x,y) -> R(x,z)")
        assert equivalent([left], [right])

    def test_redundant_atom_equivalent(self):
        left = parse_tgd("S(x,y) -> R(x,y)")
        right = parse_tgd("S(x,y) & S(x,yp) -> R(x,y)")
        assert equivalent([left], [right])

    def test_nested_vs_flattened_when_body_determined(self):
        """Example 3.4's tgd is equivalent to its flattening because the
        nested part's variables are all bound by the root."""
        nested = parse_nested_tgd("S1(x1) -> (S2(x1) -> T2(x1))")
        flat = parse_tgd("S1(x1) & S2(x1) -> T2(x1)")
        assert equivalent([nested], [flat])

    def test_example_415_so_vs_nested_oneway(self, so_tgd_415, nested_415):
        """The plain SO tgd of Example 4.15 on the LHS implies its equivalent
        nested tgd (full equivalence needs an SO tgd RHS, which is out of
        scope for IMPLIES)."""
        assert implies([so_tgd_415], nested_415)

    def test_inequivalent(self, tau_310, tau_prime_310):
        assert not equivalent([tau_310], [tau_prime_310])


class TestSourceEgds:
    def test_implication_gained_through_key(self):
        """Sigma = S(x,y) -> R2(y,y) does not imply S(x,y) & S(x,z) -> R2(y,z)
        in general, but does when S is functional (y = z forced)."""
        sigma = parse_tgd("S(x,y) -> R2(y,y)")
        target = parse_tgd("S(x,y) & S(x,z) -> R2(y,z)")
        assert not implies([sigma], target)
        egd = parse_egd("S(x,y) & S(x,z) -> y = z")
        assert implies([sigma], target, source_egds=[egd])

    def test_example_53_with_egd(self, sigma_53, egd_53):
        """With P1 functional, the nested tgd implies its 2-variable flattening
        restricted to a single x1."""
        flat = parse_tgd(
            "Q(z) & P1(z,x1) & P2(z,x2) & P1(z,xq) & P2(z,xw) "
            "-> exists y . (R(y,x1,x2) & R(y,xq,xw))"
        )
        assert implies([sigma_53], flat, source_egds=[egd_53])

    def test_egds_do_not_weaken_holding_implications(self, tau_310, tau_dprime_310):
        egd = parse_egd("S2(x) & S2(y) -> x = y")
        assert implies([tau_dprime_310], tau_310, source_egds=[egd])


class TestLHSFormalism:
    def test_plain_so_tgd_on_lhs(self, so_tgd_413):
        weak = parse_tgd("S(x,y) -> exists u, v . R(u, v)")
        assert implies([so_tgd_413], weak)

    def test_non_plain_so_tgd_rejected_on_lhs(self):
        so = parse_so_tgd("S(x) -> R(f(g(x)))")
        with pytest.raises(DependencyError):
            implies([so], parse_tgd("S(x) -> R(u,u)"))

    def test_so_tgd_rejected_on_rhs(self, so_tgd_413):
        with pytest.raises(DependencyError):
            implies_tgd([parse_tgd("S(x,y) -> R(x,y)")], so_tgd_413)


class TestBound:
    def test_bound_formula(self, tau_310, tau_prime_310, tau_dprime_310):
        assert implication_bound([tau_prime_310.to_nested()], tau_310) == 2
        assert implication_bound([tau_dprime_310.to_nested()], tau_310) == 3

    def test_no_existentials_gives_k1(self):
        lhs = parse_tgd("S(x,y) -> R(x,y)").to_nested()
        rhs = parse_nested_tgd("S(x,y) -> R(x,y)")
        assert implication_bound([lhs], rhs) == 1
