"""Tests for CQ containment, equivalence, and minimization (Chandra-Merlin)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.logic.parser import parse_instance
from repro.queries.containment import (
    equivalent_queries,
    freeze,
    is_contained_in,
    minimize_query,
)
from repro.queries.cq import parse_query


class TestFreeze:
    def test_head_becomes_constants(self):
        q = parse_query("q(x) :- R(x, y)")
        frozen, head = freeze(q)
        assert len(head) == 1
        assert len(frozen.constants()) == 1
        assert len(frozen.nulls()) == 1


class TestContainment:
    def test_specialization_contained_in_generalization(self):
        path = parse_query("q(x, z) :- R(x, y) & R(y, z)")
        loose = parse_query("q(x, z) :- R(x, u) & R(v, z)")
        assert is_contained_in(path, loose)
        assert not is_contained_in(loose, path)

    def test_self_containment(self):
        q = parse_query("q(x, z) :- R(x, y) & R(y, z)")
        assert is_contained_in(q, q)

    def test_extra_condition_narrows(self):
        narrow = parse_query("q(x) :- R(x, y) & P(y)")
        wide = parse_query("q(x) :- R(x, y)")
        assert is_contained_in(narrow, wide)
        assert not is_contained_in(wide, narrow)

    def test_different_arity_incomparable(self):
        q1 = parse_query("q(x) :- R(x, y)")
        q2 = parse_query("q(x, y) :- R(x, y)")
        assert not is_contained_in(q1, q2)

    def test_repeated_head_variables(self):
        diag = parse_query("q(x, x) :- R(x, x)")
        pair = parse_query("q(x, y) :- R(x, y)")
        assert is_contained_in(diag, pair)
        assert not is_contained_in(pair, diag)

    def test_semantic_witness(self):
        """Containment verdicts match actual evaluation on sample instances."""
        narrow = parse_query("q(x) :- R(x, y) & P(y)")
        wide = parse_query("q(x) :- R(x, y)")
        for text in ["R(a,b), P(b)", "R(a,b)", "R(a,b), R(b,c), P(c)"]:
            instance = parse_instance(text)
            assert narrow.evaluate(instance) <= wide.evaluate(instance)


class TestEquivalence:
    def test_reordered_bodies(self):
        q1 = parse_query("q(x) :- R(x, y) & P(y)")
        q2 = parse_query("q(x) :- P(y) & R(x, y)")
        assert equivalent_queries(q1, q2)

    def test_redundant_atom_equivalent(self):
        q1 = parse_query("q(x) :- R(x, y)")
        q2 = parse_query("q(x) :- R(x, y) & R(x, z)")
        assert equivalent_queries(q1, q2)

    def test_inequivalent(self):
        q1 = parse_query("q(x) :- R(x, y)")
        q2 = parse_query("q(x) :- R(y, x)")
        assert not equivalent_queries(q1, q2)


class TestMinimization:
    def test_redundant_atom_removed(self):
        q = parse_query("q(x) :- R(x, y) & R(x, z)")
        assert len(minimize_query(q).body) == 1

    def test_minimized_query_equivalent(self):
        q = parse_query("q(x) :- R(x, y) & R(x, z) & R(w, y)")
        minimal = minimize_query(q)
        assert equivalent_queries(q, minimal)

    def test_core_query_untouched(self):
        q = parse_query("q(x, z) :- R(x, y) & R(y, z)")
        assert len(minimize_query(q).body) == 2

    def test_head_variables_preserved(self):
        q = parse_query("q(x, z) :- R(x, y) & R(y, z) & R(x, w)")
        minimal = minimize_query(q)
        assert [v.name for v in minimal.head] == ["x", "z"]

    @settings(max_examples=40, deadline=None)
    @given(
        body_size=st.integers(1, 3),
        seed=st.integers(0, 1000),
    )
    def test_minimization_idempotent_on_random_queries(self, body_size, seed):
        import random

        rng = random.Random(seed)
        variables = ["x", "y", "z", "w"]
        body_atoms = " & ".join(
            f"R({rng.choice(variables)}, {rng.choice(variables)})"
            for __ in range(body_size)
        )
        q = parse_query(f"q(x) :- {body_atoms} & R(x, x)")
        minimal = minimize_query(q)
        assert equivalent_queries(q, minimal)
        again = minimize_query(minimal)
        assert len(again.body) == len(minimal.body)
