"""Tests for the DAG-incremental IMPLIES sweep.

The incremental sweep must be *observationally identical* to the from-scratch
sweep: same verdict, same number of patterns checked, same failing pattern --
and when it refutes, its counterexample must be a genuine semantic witness
(``chase(I, sigma)`` does not map into ``chase(I, Sigma)``), even though the
incremental construction names its fresh constants in attachment order rather
than canonical DFS order (the instances are isomorphic, not equal).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, HealthCheck
import hypothesis.strategies as st

from repro import perf
from repro.core import implication
from repro.core.implication import clear_chase_cache, implies_tgd
from repro.core.patterns import count_k_patterns
from repro.engine.chase import chase
from repro.engine.homomorphism import find_homomorphism
from repro.errors import DependencyError, ResourceLimitExceeded
from repro.logic.parser import parse_nested_tgd, parse_tgd

from tests.strategies import nested_tgds

TAU = parse_nested_tgd("S1(x1) -> exists y . (S2(x2) -> R(x2, y))")
TAU_PRIME = parse_tgd("S2(x2) -> exists z . R(x2, z)")
TAU_DPRIME = parse_tgd("S1(x1) & S2(x2) -> R(x2, x1)")


# ----------------------------------------------------------- differential


def _assert_same_result(lhs, rhs, **kwargs):
    clear_chase_cache()
    fresh = implies_tgd(lhs, rhs, incremental=False, **kwargs)
    clear_chase_cache()
    incremental = implies_tgd(lhs, rhs, incremental=True, **kwargs)
    assert incremental.holds == fresh.holds
    assert incremental.k == fresh.k
    assert incremental.patterns_checked == fresh.patterns_checked
    assert incremental.failing_pattern == fresh.failing_pattern
    if not incremental.holds:
        # the incremental counterexample names constants in attachment order,
        # so compare up to isomorphism and check it is a semantic witness
        assert incremental.counterexample_source.isomorphic(
            fresh.counterexample_source, rename_constants=True
        )
        witness = incremental.counterexample_source
        assert find_homomorphism(chase(witness, [rhs]), chase(witness, lhs)) is None
    return incremental


def test_ex310_differential_refuted():
    result = _assert_same_result([TAU_PRIME], TAU)
    assert not result.holds


def test_ex310_differential_implied():
    result = _assert_same_result([TAU_DPRIME], TAU)
    assert result.holds


def test_differential_wider_nesting():
    rhs = parse_nested_tgd(
        "S1(x1) -> exists y1 . ((S2(x2) -> R2(y1, x2)) "
        "& (S3(x3) -> exists y2 . R3(y2, x3)))"
    )
    lhs = [
        parse_nested_tgd("S1(x1) -> exists y1 . (S2(x2) -> R2(y1, x2))"),
        parse_nested_tgd("S3(x3) -> exists y2 . R3(y2, x3)"),
    ]
    result = _assert_same_result(lhs, rhs, max_patterns=50_000, subsumption=False)
    assert result.patterns_checked > 3  # the sweep reached the two-child level


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.data_too_large])
@given(st.lists(nested_tgds(max_depth=2), min_size=1, max_size=2),
       nested_tgds(max_depth=2))
def test_differential_random_nested_tgds(lhs, rhs):
    try:
        _assert_same_result(lhs, rhs, max_patterns=2_000, subsumption=False)
    except ResourceLimitExceeded:
        pass  # both sweeps respect max_patterns; the bound itself is tested below


def test_parallel_incremental_matches_serial():
    clear_chase_cache()
    serial = implies_tgd([TAU_PRIME], TAU)
    clear_chase_cache()
    parallel = implies_tgd([TAU_PRIME], TAU, parallel=2)
    assert parallel.holds == serial.holds
    assert parallel.patterns_checked == serial.patterns_checked
    assert parallel.failing_pattern == serial.failing_pattern
    assert parallel.counterexample_source == serial.counterexample_source
    assert parallel.counterexample_target == serial.counterexample_target


# ----------------------------------------------------------- perf counters


def test_incremental_hits_counted_on_ex310():
    clear_chase_cache()
    perf.reset()
    result = implies_tgd([TAU_DPRIME], TAU, subsumption=False)
    assert result.holds
    snap = perf.snapshot()
    # every non-root pattern extends its parent's chase state incrementally
    assert snap.get("implies.sweep.incremental_hits", 0) > 0
    assert snap["implies.sweep.incremental_hits"] == result.patterns_checked - 1


def test_warm_sweep_hits_cache_for_every_pattern():
    clear_chase_cache()
    implies_tgd([TAU_DPRIME], TAU, subsumption=False)
    perf.reset()
    warm = implies_tgd([TAU_DPRIME], TAU, subsumption=False)
    snap = perf.snapshot()
    assert snap.get("implies.cache_hits", 0) == warm.patterns_checked
    assert snap.get("implies.cache_misses", 0) == 0
    assert snap.get("implies.sweep.incremental_hits", 0) == 0


# ------------------------------------------------------------ resource caps


def test_max_patterns_preflight_raises_before_sweeping():
    rhs = parse_nested_tgd(
        "S1(x1) -> exists y . ((S2(x2) -> R(x2, y)) & (S3(x3) -> R(x3, y)))"
    )
    count = count_k_patterns(rhs, 3)
    with pytest.raises(ResourceLimitExceeded):
        implies_tgd([TAU_DPRIME], rhs, max_patterns=count - 1, subsumption=False)
    # and the exact count passes
    implies_tgd([TAU_DPRIME], rhs, max_patterns=count, subsumption=False)


def test_count_k_patterns_saturates_instead_of_bigint():
    from repro.analysis.cost import SATURATION_CAP

    depth4 = parse_nested_tgd(
        "S1(x1) -> (S1(x2) -> (S1(x3) -> (S1(x4) -> P(x4))))"
    )
    count = count_k_patterns(depth4, 9)
    # the exact value is a tower (10^(10^11)); the saturating count clamps
    assert count == SATURATION_CAP
    assert count.bit_length() < 64


def test_incremental_with_source_egds_is_rejected():
    from repro.logic.parser import parse_egd

    egd = parse_egd("S2(x, y) & S2(x, z) -> y = z")
    with pytest.raises(DependencyError):
        implies_tgd([TAU_PRIME], TAU, source_egds=[egd], incremental=True)
    # the default routes egd runs through the from-scratch sweep
    result = implies_tgd([TAU_PRIME], TAU, source_egds=[egd])
    assert result.patterns_checked > 0


# --------------------------------------------------- chase-cache capacity


def test_budget_presize_is_restored_after_sweep():
    clear_chase_cache()
    before = implication._CHASE_CACHE_LIMIT
    implies_tgd([TAU_DPRIME], TAU, subsumption=False, budget=10_000_000)
    assert implication._CHASE_CACHE_LIMIT == before
    assert len(implication._CHASE_CACHE) <= before


def test_clear_chase_cache_resets_presized_capacity():
    clear_chase_cache()
    implication._presize_chase_cache(4096)
    assert implication._CHASE_CACHE_LIMIT > implication._CHASE_CACHE_LIMIT_DEFAULT
    clear_chase_cache()
    assert implication._CHASE_CACHE_LIMIT == implication._CHASE_CACHE_LIMIT_DEFAULT
    assert len(implication._CHASE_CACHE) == 0
