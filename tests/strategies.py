"""Hypothesis strategies for randomly generated nested tgds and instances.

The tgd generator builds well-formed part trees directly (respecting the
grammar's scoping rules: universal variables occur in their own part's body,
bodies use only universal variables in scope, heads may also use existential
variables in scope), so every generated tgd passes NestedTgd validation by
construction.  The instance generator draws facts over a small shared pool of
constants and nulls, so drawn instances overlap enough for homomorphisms to
exist (and fail) in interesting ways.
"""

from __future__ import annotations

import hypothesis.strategies as st

from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.nested import NestedTgd, Part
from repro.logic.values import Constant, Null, Variable


SOURCE_RELATIONS = [("S", 2), ("T", 2), ("Q", 1)]
TARGET_RELATIONS = [("R", 2), ("P", 1), ("U", 3)]


@st.composite
def nested_tgds(draw, max_depth: int = 3, max_children: int = 2):
    """Generate a random well-formed :class:`NestedTgd`."""
    counter = {"var": 0}

    def fresh(prefix: str) -> Variable:
        counter["var"] += 1
        return Variable(f"{prefix}{counter['var']}")

    def build_part(depth: int, universal_scope: tuple, exist_scope: tuple) -> Part:
        own_universal = tuple(
            fresh("x") for __ in range(draw(st.integers(1, 2)))
        )
        body_scope = universal_scope + own_universal
        body_atoms = []
        # each own universal variable must occur in the part's own body
        remaining = list(own_universal)
        while remaining or not body_atoms:
            name, arity = draw(st.sampled_from(SOURCE_RELATIONS))
            args = []
            for __ in range(arity):
                if remaining:
                    args.append(remaining.pop())
                else:
                    args.append(draw(st.sampled_from(list(body_scope))))
            body_atoms.append(Atom(name, tuple(args)))

        own_exist = tuple(fresh("y") for __ in range(draw(st.integers(0, 1))))
        head_scope = body_scope + exist_scope + own_exist
        head_atoms = []
        for __ in range(draw(st.integers(0, 2))):
            name, arity = draw(st.sampled_from(TARGET_RELATIONS))
            args = tuple(
                draw(st.sampled_from(list(head_scope))) for __ in range(arity)
            )
            head_atoms.append(Atom(name, args))

        children = []
        if depth < max_depth:
            for __ in range(draw(st.integers(0, max_children))):
                children.append(
                    build_part(depth + 1, body_scope, exist_scope + own_exist)
                )
        if not head_atoms and not children:
            # avoid completely vacuous conclusions: add one head atom
            name, arity = draw(st.sampled_from(TARGET_RELATIONS))
            args = tuple(
                draw(st.sampled_from(list(head_scope))) for __ in range(arity)
            )
            head_atoms.append(Atom(name, args))
        return Part(
            universal_vars=own_universal,
            body=tuple(body_atoms),
            exist_vars=own_exist,
            head=tuple(head_atoms),
            children=tuple(children),
        )

    return NestedTgd(build_part(1, (), ()))


#: Relations used by :func:`instances` (reusing the target schema keeps drawn
#: instances homomorphism-comparable with chase results).
INSTANCE_RELATIONS = [("R", 2), ("P", 1), ("U", 3)]


@st.composite
def instances(
    draw,
    max_facts: int = 8,
    max_constants: int = 4,
    max_nulls: int = 4,
    min_facts: int = 0,
):
    """Generate a random :class:`Instance` over a small value pool.

    Values are drawn from shared pools (``a0..``, ``_n0..``) so that two
    independently drawn instances share constants -- the interesting regime
    for differential homomorphism tests.  ``max_nulls=0`` yields ground
    instances.
    """
    values = [Constant(f"a{i}") for i in range(max_constants)]
    values += [Null(f"n{i}") for i in range(max_nulls)]
    n_facts = draw(st.integers(min_facts, max_facts))
    facts = []
    for __ in range(n_facts):
        name, arity = draw(st.sampled_from(INSTANCE_RELATIONS))
        args = tuple(draw(st.sampled_from(values)) for __ in range(arity))
        facts.append(Atom(name, args))
    return Instance(facts)


@st.composite
def same_schema_tgds(draw, max_tgds: int = 3, max_body_atoms: int = 2):
    """Generate a small set of flat tgds over one shared schema.

    Unlike :func:`nested_tgds` (whose source/target schemas are disjoint by
    construction, so the chase trivially terminates in one round), these tgds
    read and write the *same* relations -- the regime where the termination
    hierarchy does real work.  Bodies draw only universal variables; heads mix
    universals with an optional existential, so some draws are recursive and
    value-inventing.
    """
    from repro.logic.tgds import STTgd

    universal = [Variable(f"x{i}") for i in range(3)]
    tgds = []
    for __ in range(draw(st.integers(1, max_tgds))):
        body = []
        for __ in range(draw(st.integers(1, max_body_atoms))):
            name, arity = draw(st.sampled_from(INSTANCE_RELATIONS))
            args = tuple(
                draw(st.sampled_from(universal)) for __ in range(arity)
            )
            body.append(Atom(name, args))
        in_scope = sorted(
            {arg for atom in body for arg in atom.args}, key=lambda v: v.name
        )
        head_pool = list(in_scope)
        if draw(st.booleans()):
            head_pool.append(Variable("w"))  # existential
        head = []
        for __ in range(draw(st.integers(1, 2))):
            name, arity = draw(st.sampled_from(INSTANCE_RELATIONS))
            args = tuple(
                draw(st.sampled_from(head_pool)) for __ in range(arity)
            )
            head.append(Atom(name, args))
        tgds.append(STTgd(body=tuple(body), head=tuple(head)))
    return tgds


@st.composite
def schema_mappings(draw, max_tgds: int = 3, max_body_atoms: int = 2):
    """Generate a small schema mapping: flat s-t tgds over disjoint schemas.

    Bodies draw from ``SOURCE_RELATIONS`` and heads from
    ``TARGET_RELATIONS`` (the disjoint split every s-t mapping has), so any
    drawn set is weakly acyclic by construction and the containment /
    optimization machinery runs fully certified on it -- the regime the
    differential suites need.  Bodies use a shared universal pool ``x0..x2``
    (so independently drawn mappings overlap); heads mix in-scope universals
    with an optional existential ``w``.
    """
    from repro.logic.tgds import STTgd

    universal = [Variable(f"x{i}") for i in range(3)]
    tgds = []
    for __ in range(draw(st.integers(1, max_tgds))):
        body = []
        for __ in range(draw(st.integers(1, max_body_atoms))):
            name, arity = draw(st.sampled_from(SOURCE_RELATIONS))
            args = tuple(
                draw(st.sampled_from(universal)) for __ in range(arity)
            )
            body.append(Atom(name, args))
        in_scope = sorted(
            {arg for atom in body for arg in atom.args}, key=lambda v: v.name
        )
        head_pool = list(in_scope)
        if draw(st.booleans()):
            head_pool.append(Variable("w"))  # existential
        head = []
        for __ in range(draw(st.integers(1, 2))):
            name, arity = draw(st.sampled_from(TARGET_RELATIONS))
            args = tuple(
                draw(st.sampled_from(head_pool)) for __ in range(arity)
            )
            head.append(Atom(name, args))
        tgds.append(STTgd(body=tuple(body), head=tuple(head)))
    return tgds


@st.composite
def patterns(draw, tgd: NestedTgd | None = None, max_nodes: int = 6, k: int = 3):
    """Generate ``(tgd, pattern, k)`` with *pattern* a k-pattern of *tgd*.

    The pattern is grown by random single-leaf attachments from the root
    pattern -- exactly the producer edges of the DAG-incremental IMPLIES
    sweep -- rejecting any attachment that would exceed the clone bound, so
    every draw satisfies ``pattern.is_k_pattern(k)`` by construction.
    """
    from repro.core.patterns import Pattern

    if tgd is None:
        tgd = draw(nested_tgds())

    def to_pattern(node: list) -> Pattern:
        return Pattern(node[0], tuple(to_pattern(child) for child in node[1]))

    def preorder(node: list, out: list) -> list:
        out.append(node)
        for child in node[1]:
            preorder(child, out)
        return out

    root = [1, []]
    for __ in range(draw(st.integers(0, max_nodes - 1))):
        nodes = preorder(root, [])
        node = nodes[draw(st.integers(0, len(nodes) - 1))]
        choices = tgd.children_of(node[0])
        if not choices:
            continue
        part = draw(st.sampled_from(list(choices)))
        node[1].append([part, []])
        if not to_pattern(root).is_k_pattern(k):
            node[1].pop()
    return tgd, to_pattern(root), k


__all__ = [
    "nested_tgds",
    "instances",
    "patterns",
    "same_schema_tgds",
    "schema_mappings",
    "SOURCE_RELATIONS",
    "TARGET_RELATIONS",
    "INSTANCE_RELATIONS",
]
