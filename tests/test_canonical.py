"""Tests for canonical instances of patterns (Definitions 3.7 and 5.4)."""

from repro.core.canonical import (
    canonical_instances,
    legal_canonical_instances,
    rename_values_deep,
)
from repro.core.patterns import Pattern
from repro.logic.parser import parse_instance
from repro.logic.terms import FuncTerm
from repro.logic.values import Constant


class TestCanonicalInstances:
    def test_figure_2_shape(self, sigma_star):
        """Figure 2: the canonical instances of the full 1-pattern p8."""
        p8 = Pattern(1, (Pattern(2), Pattern(3), Pattern(3, (Pattern(4),))))
        canon = canonical_instances(p8, sigma_star)
        # source: S1(a1); S2(a2); S3(a1,a3); S3(a1,a4); S4(a4,a5)
        assert sorted(f.relation for f in canon.source) == ["S1", "S2", "S3", "S3", "S4"]
        # target: R2(f(a1),a2); R3(f(a1),a3); R3(f(a1),a4); R4(g(a1,a4,a5),a5)
        assert sorted(f.relation for f in canon.target) == ["R2", "R3", "R3", "R4"]

    def test_distinct_fresh_constants_per_node(self, intro_nested):
        pattern = Pattern(1, (Pattern(2), Pattern(2)))
        canon = canonical_instances(pattern, intro_nested)
        # root binds x1,x2; each part-2 clone binds its own x3
        assert len(canon.source.constants()) == 4

    def test_example_310_canonical_instances(self, tau_310):
        """I_{p''_2} = {S1(a1), S2(a2), S2(a2')}, J = {R(a2,f(a1)), R(a2',f(a1))}."""
        pattern = Pattern(1, (Pattern(2), Pattern(2)))
        canon = canonical_instances(pattern, tau_310)
        assert sorted(f.relation for f in canon.source) == ["S1", "S2", "S2"]
        assert len(canon.target) == 2
        nulls = canon.target.nulls()
        assert len(nulls) == 1  # both R facts share f(a1)

    def test_skolem_nulls_shared_across_parts(self, sigma_star):
        """y1 = f(x1) is the same null in R2 and R3 facts (correlation)."""
        p = Pattern(1, (Pattern(2), Pattern(3)))
        canon = canonical_instances(p, sigma_star)
        r2_null = next(iter(canon.target.facts_of("R2")[0].nulls()))
        r3_null = next(iter(canon.target.facts_of("R3")[0].nulls()))
        assert r2_null == r3_null

    def test_assignments_recorded_per_path(self, sigma_star):
        p = Pattern(1, (Pattern(3, (Pattern(4),)),))
        canon = canonical_instances(p, sigma_star)
        assert set(canon.assignments) == {(), (0,), (0, 0)}
        root_assignment = canon.assignments[()]
        leaf_assignment = canon.assignments[(0, 0)]
        for var, value in root_assignment.items():
            assert leaf_assignment[var] == value

    def test_unique_up_to_constant_renaming(self, intro_nested):
        pattern = Pattern(1, (Pattern(2),))
        first = canonical_instances(pattern, intro_nested)
        second = canonical_instances(pattern, intro_nested)
        assert first.source == second.source  # same default factory -> identical

    def test_empty_head_pattern_gives_empty_target(self, sigma_star):
        canon = canonical_instances(Pattern(1), sigma_star)
        assert len(canon.target) == 0
        assert len(canon.source) == 1


class TestLegalCanonicalInstances:
    def test_example_53(self, sigma_53, egd_53):
        """Cloning part 2 and chasing with the egd merges the P1 values."""
        pattern = Pattern(1, (Pattern(2), Pattern(2)))
        plain = canonical_instances(pattern, sigma_53)
        legal = legal_canonical_instances(pattern, sigma_53, [egd_53])
        assert len(plain.source) == 5  # Q, 2x P1, 2x P2
        assert len(legal.source) == 4  # the two P1 facts merged
        # the merged constant appears in both target facts
        p1_value = legal.source.facts_of("P1")[0].args[1]
        for fact in legal.target:
            assert p1_value in fact.args

    def test_no_egds_is_plain_canonical(self, sigma_53):
        pattern = Pattern(1, (Pattern(2),))
        plain = canonical_instances(pattern, sigma_53)
        legal = legal_canonical_instances(pattern, sigma_53, [])
        assert plain.source == legal.source
        assert plain.target == legal.target

    def test_assignments_follow_equalities(self, sigma_53, egd_53):
        pattern = Pattern(1, (Pattern(2), Pattern(2)))
        legal = legal_canonical_instances(pattern, sigma_53, [egd_53])
        x1_values = {
            assignment[var]
            for assignment in legal.assignments.values()
            for var in assignment
            if var.name == "x1"
        }
        assert len(x1_values) == 1


class TestDeepRenaming:
    def test_renames_inside_skolem_terms(self):
        a, b = Constant("a"), Constant("b")
        inst = parse_instance("")
        from repro.logic.atoms import Atom
        from repro.logic.instances import Instance

        inst = Instance([Atom("R", (FuncTerm("f", (a,)), a))])
        renamed = rename_values_deep(inst, {a: b})
        fact = next(iter(renamed))
        assert fact.args == (FuncTerm("f", (b,)), b)

    def test_identity_outside_mapping(self):
        inst = parse_instance("R(a, b)")
        assert rename_values_deep(inst, {}) == inst
