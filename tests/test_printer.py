"""Round-trip tests: parse(format(x)) == x for every dependency kind."""

import pytest

from repro.logic.parser import (
    parse_egd,
    parse_instance,
    parse_nested_tgd,
    parse_so_tgd,
    parse_tgd,
)
from repro.logic.printer import (
    format_egd,
    format_instance,
    format_nested_tgd,
    format_so_tgd,
    format_tgd,
)


TGDS = [
    "S(x,y) -> R(x,y)",
    "S(x,y) -> exists z . R(x,z)",
    "S(x,y) & T(y,z) -> R(x,z) & P(z, w)",
]

NESTED = [
    "S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))",
    "S1(x1) -> (S2(x2) -> R(x1,x2))",
    "S1(x1) -> exists y1 . ((S2(x2) -> R2(y1,x2)) & (S3(x1,x3) -> R3(y1,x3) "
    "& (S4(x3,x4) -> exists y2 . R4(y2,x4))))",
]

SO_TGDS = [
    "S(x,y) -> R(f(x), f(y))",
    "S(x,y) & Q(z) -> R(f(z,x), f(z,y), g(z))",
    "Emp(e) -> Mgr(e, f(e)) ; Emp(e) & e = f(e) -> SelfMgr(e)",
    "S(x) -> R(f(g(x)))",
]

EGDS = [
    "S(x,y) & S(x,z) -> y = z",
    "P1(z,x1) & P1(z,xp) -> x1 = xp",
]

INSTANCES = [
    "S(a,b), S(b,c)",
    "R(a, _n1), R(_n1, _n2)",
    "Q(a)",
]


@pytest.mark.parametrize("text", TGDS)
def test_tgd_round_trip(text):
    tgd = parse_tgd(text)
    assert parse_tgd(format_tgd(tgd)) == tgd


@pytest.mark.parametrize("text", NESTED)
def test_nested_round_trip(text):
    tgd = parse_nested_tgd(text)
    assert parse_nested_tgd(format_nested_tgd(tgd)) == tgd


@pytest.mark.parametrize("text", SO_TGDS)
def test_so_tgd_round_trip(text):
    so = parse_so_tgd(text)
    assert parse_so_tgd(format_so_tgd(so)) == so


@pytest.mark.parametrize("text", EGDS)
def test_egd_round_trip(text):
    egd = parse_egd(text)
    assert parse_egd(format_egd(egd)) == egd


@pytest.mark.parametrize("text", INSTANCES)
def test_instance_round_trip(text):
    inst = parse_instance(text)
    assert parse_instance(format_instance(inst)) == inst


def test_repr_of_dependencies_is_the_format(sigma_star):
    assert parse_nested_tgd(repr(sigma_star)) == sigma_star
