"""Tests for text and DOT renderings."""

from repro.core.patterns import Pattern
from repro.engine.nested_chase import chase_nested
from repro.logic.parser import parse_instance, parse_nested_tgd
from repro.viz import (
    chase_forest_dot,
    fact_graph_dot,
    null_graph_dot,
    pattern_dot,
    render_chase_tree,
    render_part,
    render_pattern,
)


class TestTextRendering:
    def test_pattern_tree_indented(self):
        text = render_pattern(Pattern(1, (Pattern(2), Pattern(3, (Pattern(4),)))))
        lines = text.splitlines()
        assert lines[0] == "sigma_1"
        assert lines[1] == "  sigma_2"
        assert lines[3] == "    sigma_4"

    def test_pattern_with_formulas(self, sigma_star):
        text = render_pattern(Pattern(1, (Pattern(2),)), sigma_star)
        assert "S1(x1)" in text
        assert "R2(y1, x2)" in text

    def test_render_part(self, sigma_star):
        assert render_part(sigma_star, 4).startswith("sigma_4: S4(x3, x4)")
        assert "exists y2" in render_part(sigma_star, 4)

    def test_render_part_empty_head(self, sigma_star):
        # part 1 has no own head atoms: conclusion shown as T
        assert render_part(sigma_star, 1).endswith("T")

    def test_render_chase_tree(self, intro_nested):
        forest = chase_nested(parse_instance("S(a,b)"), intro_nested)
        text = render_chase_tree(forest.trees[0])
        assert "sigma_1" in text and "sigma_2" in text
        assert "x1=a" in text and "R(" in text


class TestDotRendering:
    def test_fact_graph_dot(self):
        dot = fact_graph_dot(parse_instance("R(a,_x), T(_x,b)"))
        assert dot.startswith("graph fact_graph {")
        assert dot.count("--") == 1
        assert dot.strip().endswith("}")

    def test_null_graph_dot(self):
        dot = null_graph_dot(parse_instance("R(_x,_y), R(_y,_z)"))
        assert dot.count("--") == 2
        assert "_x" in dot

    def test_pattern_dot(self):
        dot = pattern_dot(Pattern(1, (Pattern(2), Pattern(2))))
        assert dot.startswith("digraph pattern {")
        assert dot.count("->") == 2
        assert dot.count("sigma_2") == 2

    def test_chase_forest_dot(self, intro_nested):
        forest = chase_nested(parse_instance("S(a,b), S(c,d)"), intro_nested)
        dot = chase_forest_dot(forest)
        # two trees, each with one child triggering
        assert dot.count("->") == 2
        assert dot.count("sigma_1") == 2

    def test_dot_escapes_quotes(self):
        from repro.viz.dot import _quote

        assert _quote('a"b') == '"a\\"b"'
