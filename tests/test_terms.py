"""Tests for functional (Skolem) terms."""

import pytest

from repro.logic.terms import (
    FuncTerm,
    is_ground,
    is_nested,
    rename_term_functions,
    substitute_term,
    term_functions,
    term_variables,
)
from repro.logic.values import Constant, Null, Variable


X, Y = Variable("x"), Variable("y")
A = Constant("a")


class TestGroundness:
    def test_variable_is_not_ground(self):
        assert not is_ground(X)

    def test_constant_is_ground(self):
        assert is_ground(A)

    def test_term_over_variables_is_not_ground(self):
        assert not is_ground(FuncTerm("f", (X,)))

    def test_term_over_constants_is_ground(self):
        assert is_ground(FuncTerm("f", (A,)))

    def test_nested_ground_term(self):
        assert is_ground(FuncTerm("f", (FuncTerm("g", (A,)),)))

    def test_deeply_hidden_variable_detected(self):
        assert not is_ground(FuncTerm("f", (A, FuncTerm("g", (X,)))))


class TestNesting:
    def test_flat_term_is_not_nested(self):
        assert not is_nested(FuncTerm("f", (X, Y)))

    def test_nested_term_is_detected(self):
        assert is_nested(FuncTerm("f", (FuncTerm("g", (X,)),)))

    def test_variable_is_not_nested(self):
        assert not is_nested(X)


class TestTraversals:
    def test_term_variables_in_order_with_repetition(self):
        term = FuncTerm("f", (X, FuncTerm("g", (Y, X))))
        assert list(term_variables(term)) == [X, Y, X]

    def test_term_functions_outside_in(self):
        term = FuncTerm("f", (FuncTerm("g", (X,)),))
        assert list(term_functions(term)) == ["f", "g"]

    def test_constant_has_no_variables(self):
        assert list(term_variables(A)) == []


class TestSubstitution:
    def test_substitute_variable(self):
        assert substitute_term(X, {X: A}) == A

    def test_partial_substitution_keeps_unbound_variables(self):
        term = FuncTerm("f", (X, Y))
        result = substitute_term(term, {X: A})
        assert result == FuncTerm("f", (A, Y))

    def test_substitution_reaches_nested_terms(self):
        term = FuncTerm("f", (FuncTerm("g", (X,)),))
        result = substitute_term(term, {X: A})
        assert result == FuncTerm("f", (FuncTerm("g", (A,)),))

    def test_substituting_produces_hashable_ground_term(self):
        term = substitute_term(FuncTerm("f", (X,)), {X: A})
        assert hash(term) == hash(FuncTerm("f", (A,)))


class TestRenaming:
    def test_rename_functions(self):
        term = FuncTerm("f", (FuncTerm("g", (X,)),))
        renamed = rename_term_functions(term, {"f": "f2"})
        assert renamed == FuncTerm("f2", (FuncTerm("g", (X,)),))

    def test_rename_is_identity_outside_map(self):
        term = FuncTerm("f", (X,))
        assert rename_term_functions(term, {}) == term

    def test_rename_non_term_passthrough(self):
        assert rename_term_functions(A, {"f": "g"}) == A


class TestFuncTermBasics:
    def test_args_coerced_to_tuple(self):
        assert FuncTerm("f", [X, Y]).args == (X, Y)

    def test_arity(self):
        assert FuncTerm("f", (X, Y)).arity == 2

    def test_repr_round_trips_shape(self):
        assert repr(FuncTerm("f", (A, Null("n")))) == "f(a, _n)"
