"""Tests for mapping optimization (redundancy removal, tgd normalization)."""

import pytest

from repro.core.implication import equivalent
from repro.core.normalization import (
    minimize_tgd_body,
    normalize_tgd_head,
    optimize,
    remove_redundant_dependencies,
)
from repro.logic.parser import parse_egd, parse_nested_tgd, parse_tgd


class TestRedundancyRemoval:
    def test_weaker_dependency_dropped(self):
        strong = parse_tgd("S(x,y) -> R(x,y)")
        weak = parse_tgd("S(x,y) -> exists z . R(x,z)")
        assert remove_redundant_dependencies([weak, strong]) == [strong]

    def test_nested_subsumes_unfoldings(self, intro_nested):
        unfolding = parse_tgd(
            "S(x1,x2) & S(x1,x3) -> exists y . (R(y,x2) & R(y,x3))"
        )
        kept = remove_redundant_dependencies([intro_nested, unfolding])
        assert kept == [intro_nested]

    def test_independent_dependencies_kept(self):
        left = parse_tgd("S(x,y) -> P(x)")
        right = parse_tgd("S(x,y) -> Q(y)")
        assert len(remove_redundant_dependencies([left, right])) == 2

    def test_result_equivalent_to_input(self, intro_nested):
        deps = [
            intro_nested,
            parse_tgd("S(x1,x2) -> exists y . R(y, x2)"),
            parse_tgd("S(x,y) -> P(x)"),
        ]
        kept = remove_redundant_dependencies(deps)
        assert equivalent(kept, deps)

    def test_egd_relative_redundancy(self):
        """The two-variable variant implies the base outright (instantiate
        z := y), so one dependency always suffices; with the key egd the two
        become fully equivalent and either representative works."""
        base = parse_tgd("S(x,y) -> R2(y,y)")
        variant = parse_tgd("S(x,y) & S(x,z) -> R2(y,z)")
        egd = parse_egd("S(x,y) & S(x,z) -> y = z")
        kept = remove_redundant_dependencies([base, variant])
        assert kept == [variant]  # base is the implied one
        kept_egd = remove_redundant_dependencies([base, variant], source_egds=[egd])
        assert len(kept_egd) == 1
        assert equivalent(kept_egd, [base, variant], source_egds=[egd])


class TestBodyMinimization:
    def test_duplicate_atom_removed(self):
        tgd = parse_tgd("S(x,y) & S(x,yp) -> R(x)")
        assert len(minimize_tgd_body(tgd).body) == 1

    def test_joined_atoms_kept(self):
        tgd = parse_tgd("S(x,y) & T(y,z) -> R(x,z)")
        assert len(minimize_tgd_body(tgd).body) == 2

    def test_head_variables_stay_bound(self):
        # the second atom is subsumed as a pattern but binds the head variable
        tgd = parse_tgd("S(x,y) & S(y,z) -> R(z)")
        minimized = minimize_tgd_body(tgd)
        head_vars = minimized.head[0].variable_set()
        body_vars = {v for a in minimized.body for v in a.variable_set()}
        assert head_vars <= body_vars

    def test_result_equivalent(self):
        tgd = parse_tgd("S(x,y) & S(x,w) & S(x,y) -> R(x,y)")
        assert equivalent([minimize_tgd_body(tgd)], [tgd])


class TestHeadNormalization:
    def test_redundant_existential_folds(self):
        tgd = parse_tgd("S(x,y) -> R(x,y) & R(x,z)")
        normalized = normalize_tgd_head(tgd)
        assert len(normalized.head) == 1
        assert equivalent([normalized], [tgd])

    def test_parallel_existentials_fold(self):
        tgd = parse_tgd("S(x) -> R(x,z) & R(x,w)")
        normalized = normalize_tgd_head(tgd)
        assert len(normalized.head) == 1

    def test_meaningful_head_kept(self):
        tgd = parse_tgd("S(x,y) -> R(x,z) & T(z,y)")
        normalized = normalize_tgd_head(tgd)
        assert len(normalized.head) == 2
        assert equivalent([normalized], [tgd])

    def test_ground_head_untouched(self):
        tgd = parse_tgd("S(x,y) -> R(x,y) & P(x)")
        assert len(normalize_tgd_head(tgd).head) == 2


class TestPipeline:
    def test_optimize_mixed_mapping(self, intro_nested):
        deps = [
            parse_tgd("S(x,y) & S(x,yp) -> R(y, z) & R(y, w)"),
            intro_nested,
            parse_tgd("S(x1,x2) -> exists y . R(y, x2)"),
        ]
        optimized = optimize(deps)
        assert equivalent(optimized, deps)
        assert len(optimized) < len(deps)

    def test_optimize_preserves_flat_semantics(self):
        deps = [parse_tgd("S(x,y) & S(x,y) -> R(x,y) & R(x,w)")]
        optimized = optimize(deps)
        assert equivalent(optimized, deps)
        [tgd] = optimized
        assert len(tgd.body) == 1
        assert len(tgd.head) == 1
