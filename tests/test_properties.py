"""Property-based tests (hypothesis) for the engine invariants.

Strategies generate small random instances and dependencies; the properties
are the classical data-exchange invariants the paper's machinery rests on:

- the chase produces a solution, and a *universal* one;
- cores are hom-equivalent, minimal, and idempotent;
- homomorphisms compose;
- the egd chase reaches a fixpoint satisfying the egds;
- canonical instances of a pattern chase back to a target containing J_p.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core.canonical import canonical_instances
from repro.core.patterns import enumerate_k_patterns
from repro.engine.chase import chase
from repro.engine.core_instance import core, is_core
from repro.engine.egd_chase import chase_egds, satisfies_egds
from repro.engine.homomorphism import (
    find_homomorphism,
    has_homomorphism,
    homomorphically_equivalent,
    is_homomorphism,
)
from repro.engine.model_check import satisfies
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.parser import parse_egd, parse_nested_tgd, parse_tgd
from repro.logic.values import Constant, Null


CONSTANTS = [Constant(name) for name in "abcd"]
NULLS = [Null(f"n{i}") for i in range(4)]

values = st.sampled_from(CONSTANTS + NULLS)
source_values = st.sampled_from(CONSTANTS)

source_facts = st.builds(
    Atom,
    st.sampled_from(["S", "T"]),
    st.tuples(source_values, source_values),
)
target_facts = st.builds(
    Atom,
    st.sampled_from(["R", "P"]),
    st.tuples(values, values),
)

source_instances = st.lists(source_facts, min_size=0, max_size=6).map(Instance)
target_instances = st.lists(target_facts, min_size=0, max_size=6).map(Instance)

TGDS = [
    parse_tgd("S(x,y) -> R(x,y)"),
    parse_tgd("S(x,y) -> R(x,z)"),
    parse_tgd("S(x,y) & T(y,z) -> R(x,z) & P(z,w)"),
    parse_nested_tgd("S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))"),
    parse_nested_tgd("T(x1,x2) -> (S(x2,x3) -> P(x1,x3))"),
]

dependency = st.sampled_from(TGDS)


class TestChaseProperties:
    @settings(max_examples=40, deadline=None)
    @given(source=source_instances, dep=dependency)
    def test_chase_is_a_solution(self, source, dep):
        assert satisfies(source, chase(source, dep), dep)

    @settings(max_examples=25, deadline=None)
    @given(source=source_instances, dep=dependency, candidate=target_instances)
    def test_chase_is_universal(self, source, dep, candidate):
        """Any solution is a homomorphic image target of the chase."""
        if satisfies(source, candidate, dep):
            assert has_homomorphism(chase(source, dep), candidate)

    @settings(max_examples=25, deadline=None)
    @given(source=source_instances, dep=dependency)
    def test_core_of_chase_is_still_a_solution(self, source, dep):
        """Nested GLAV mappings are closed under target homomorphisms, and
        the core is hom-equivalent, so it remains a solution (Section 4.1)."""
        solution = chase(source, dep)
        assert satisfies(source, core(solution), dep)

    @settings(max_examples=25, deadline=None)
    @given(source=source_instances, bigger=source_instances, dep=dependency)
    def test_chase_is_monotone(self, source, bigger, dep):
        combined = source.union(bigger)
        assert chase(source, dep) <= chase(combined, dep)


class TestCoreProperties:
    @settings(max_examples=50, deadline=None)
    @given(instance=target_instances)
    def test_core_hom_equivalent(self, instance):
        assert homomorphically_equivalent(core(instance), instance)

    @settings(max_examples=50, deadline=None)
    @given(instance=target_instances)
    def test_core_is_subinstance_and_idempotent(self, instance):
        result = core(instance)
        assert result <= instance
        assert is_core(result)
        assert core(result) == result

    @settings(max_examples=50, deadline=None)
    @given(instance=target_instances)
    def test_core_preserves_ground_facts(self, instance):
        ground = {f for f in instance if not any(True for __ in f.nulls())}
        assert ground <= set(core(instance).facts)


class TestHomomorphismProperties:
    @settings(max_examples=50, deadline=None)
    @given(left=target_instances, right=target_instances)
    def test_found_mapping_verifies(self, left, right):
        mapping = find_homomorphism(left, right)
        if mapping is not None:
            assert is_homomorphism(mapping, left, right)

    @settings(max_examples=40, deadline=None)
    @given(a=target_instances, b=target_instances, c=target_instances)
    def test_homomorphisms_compose(self, a, b, c):
        ab = find_homomorphism(a, b)
        bc = find_homomorphism(b, c)
        if ab is not None and bc is not None:
            composed = {
                null: bc.get(value, value) for null, value in ab.items()
            }
            assert is_homomorphism(composed, a, c)

    @settings(max_examples=50, deadline=None)
    @given(instance=target_instances)
    def test_identity_is_homomorphism(self, instance):
        assert has_homomorphism(instance, instance)


class TestEgdChaseProperties:
    EGDS = [
        parse_egd("S(x,y) & S(x,z) -> y = z"),
        parse_egd("S(x,y) & S(z,y) -> x = z"),
    ]

    @settings(max_examples=50, deadline=None)
    @given(instance=source_instances, egd_index=st.integers(0, 1))
    def test_chase_reaches_fixpoint(self, instance, egd_index):
        egd = self.EGDS[egd_index]
        chased, __ = chase_egds(instance, [egd], allow_constant_merge=True)
        assert satisfies_egds(chased, [egd])

    @settings(max_examples=50, deadline=None)
    @given(instance=source_instances, egd_index=st.integers(0, 1))
    def test_equalities_map_is_idempotent(self, instance, egd_index):
        egd = self.EGDS[egd_index]
        __, equalities = chase_egds(instance, [egd], allow_constant_merge=True)
        for value, representative in equalities.items():
            assert equalities.get(representative, representative) == representative


class TestPatternProperties:
    NESTED = [
        parse_nested_tgd("S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))"),
        parse_nested_tgd("S(x1,x2) -> (T(x2,x3) -> P(x1,x3))"),
    ]

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.filter_too_much])
    @given(tgd_index=st.integers(0, 1), k=st.integers(1, 2))
    def test_canonical_target_embeds_in_chase_of_canonical_source(self, tgd_index, k):
        """J_p always maps into chase(I_p, sigma): the pattern's triggerings
        re-fire on the canonical source."""
        tgd = self.NESTED[tgd_index]
        for pattern in enumerate_k_patterns(tgd, k):
            canon = canonical_instances(pattern, tgd)
            chased = chase(canon.source, [tgd])
            assert find_homomorphism(canon.target, chased) is not None
