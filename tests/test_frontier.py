"""Tests for the halting-via-boundedness probe and chase provenance."""

from repro.engine.nested_chase import chase_nested
from repro.logic.parser import parse_instance, parse_nested_tgd
from repro.turing.frontier import Verdict, halting_via_boundedness
from repro.turing.machine import (
    bouncer_machine,
    halting_machine,
    looping_machine,
    write_and_return_machine,
)


class TestFrontier:
    def test_halting_machine_detected(self):
        report = halting_via_boundedness(halting_machine(2))
        assert report.verdict is Verdict.HALTS
        assert report.plateau_value is not None and report.plateau_value > 0

    def test_halting_with_left_moves_detected(self):
        report = halting_via_boundedness(write_and_return_machine(2))
        assert report.verdict is Verdict.HALTS

    def test_looping_machine_exhausts_budget(self):
        report = halting_via_boundedness(looping_machine(), budget=8)
        assert report.verdict is Verdict.LOOPS_UP_TO_BUDGET
        lengths = [report.lengths[n] for n in sorted(report.lengths)]
        assert lengths == sorted(lengths)  # monotone growth
        assert lengths[-1] > lengths[0]

    def test_bouncer_exhausts_budget(self):
        report = halting_via_boundedness(bouncer_machine(2), budget=8)
        assert report.verdict is Verdict.LOOPS_UP_TO_BUDGET

    def test_trace_recorded(self):
        report = halting_via_boundedness(halting_machine(3), start=2, budget=15)
        assert min(report.lengths) == 2
        # the plateau value equals the chain length at large n
        assert report.plateau_value == report.lengths[max(report.lengths)]

    def test_slow_halting_needs_larger_budget(self):
        """A machine halting after 10 steps plateaus only past n = 10."""
        slow = halting_machine(10)
        small = halting_via_boundedness(slow, budget=6)
        big = halting_via_boundedness(slow, budget=20)
        assert small.verdict is Verdict.LOOPS_UP_TO_BUDGET
        assert big.verdict is Verdict.HALTS


class TestProvenance:
    def test_every_fact_has_a_producer(self, intro_nested):
        forest = chase_nested(parse_instance("S(a,b), S(a,c)"), intro_nested)
        provenance = forest.provenance()
        assert set(provenance) == set(forest.instance.facts)

    def test_shared_facts_have_multiple_producers(self, intro_nested):
        # R(y, x2) from the root and R(y, x3) from the child coincide when
        # x3 = x2: two triggerings produce the same fact
        forest = chase_nested(parse_instance("S(a,b)"), intro_nested)
        provenance = forest.provenance()
        [fact] = list(forest.instance)
        assert len(provenance[fact]) == 2
        assert {t.part_id for t in provenance[fact]} == {1, 2}

    def test_producer_parts_are_correct(self, sigma_star):
        source = parse_instance("S1(a), S2(b), S3(a,c), S4(c,d)")
        forest = chase_nested(source, sigma_star)
        for fact, producers in forest.provenance().items():
            for triggering in producers:
                skolemized = sigma_star.skolemized_head(triggering.part_id)
                instantiated = {
                    atom.substitute(triggering.assignment) for atom in skolemized
                }
                assert fact in instantiated
