"""Edge-case batch: less-traveled paths across modules."""

import pytest

from repro.core.canonical import legal_canonical_instances
from repro.core.fblock_analysis import decide_bounded_fblock_size, fblock_threshold
from repro.core.implication import implies
from repro.core.patterns import Pattern
from repro.engine.chase import chase
from repro.engine.core_instance import core
from repro.engine.gaifman import fact_block_size
from repro.logic.parser import (
    parse_egd,
    parse_instance,
    parse_nested_tgd,
    parse_so_tgd,
    parse_tgd,
)
from repro.mappings.composition import compose


class TestCascadingEgds:
    def test_two_egds_cascade_in_legal_instances(self):
        """Merging through one egd exposes a merge through the other."""
        tgd = parse_nested_tgd(
            "Q(z) -> exists y . (P(z, x1) & W(x1, x2) -> R(y, x2))"
        )
        egd_p = parse_egd("P(z, x) & P(z, xp) -> x = xp")
        egd_w = parse_egd("W(x, u) & W(x, up) -> u = up")
        pattern = Pattern(1, (Pattern(2), Pattern(2)))
        canon = legal_canonical_instances(pattern, tgd, [egd_p, egd_w])
        # P merge forces the W keys equal, which then merges the W values
        assert len(canon.source.facts_of("P")) == 1
        assert len(canon.source.facts_of("W")) == 1
        assert len(canon.target) == 1


class TestImplicationMixedLHS:
    def test_plain_so_lhs_with_egds(self):
        so = parse_so_tgd("S(x,y) -> R(f(y), y)")
        target = parse_tgd("S(x,y) & S(x,z) -> exists u . (R(u, y) & R(u, z))")
        egd = parse_egd("S(x,y) & S(x,z) -> y = z")
        assert not implies([so], target)
        assert implies([so], target, source_egds=[egd])

    def test_mixed_lhs_formalism(self, intro_nested, so_tgd_413):
        weak = parse_tgd("S(x,y) -> exists u, v . R(u, v)")
        assert implies([intro_nested, so_tgd_413], weak)


class TestCompositionEdgeCases:
    def test_second_mapping_multiple_tgds(self):
        first = [parse_tgd("S(x,y) -> M(x,y)")]
        second = [
            parse_tgd("M(x,y) -> T(x)"),
            parse_tgd("M(x,y) & M(y,z) -> U(x,z)"),
        ]
        composed = compose(first, second)
        assert len(composed.clauses) == 2
        head_relations = {c.head[0].relation for c in composed.clauses}
        assert head_relations == {"T", "U"}

    def test_repeated_variable_positions_in_body_atom(self):
        first = [parse_tgd("S(x) -> exists y . M(x, y)")]
        second = [parse_tgd("M(u, u) -> T(u)")]
        composed = compose(first, second)
        # u matched against (x, f(x)): equality x = f(x) required
        [clause] = composed.clauses
        assert len(clause.equalities) == 1

    def test_multi_atom_heads_in_first_mapping(self):
        first = [parse_tgd("S(x) -> M(x, w) & N(w)")]
        second = [parse_tgd("M(x, y) & N(y) -> T(x)")]
        composed = compose(first, second)
        # both resolutions come from the same rule pair: one clause choice
        # per (M-rule, N-rule) combination = 1 x 1
        assert len(composed.clauses) == 1
        from repro.engine.chase import chase_so_tgd
        from repro.engine.homomorphism import homomorphically_equivalent
        from repro.mappings.composition import compose_chase

        source = parse_instance("S(a), S(b)")
        assert homomorphically_equivalent(
            chase_so_tgd(source, composed), compose_chase(source, first, second)
        )


class TestThresholdSoundness:
    @pytest.mark.parametrize(
        "text,sources",
        [
            ("S(x,y) -> R(x,z) & T(z,y)", ["S(a,b)", "S(a,b), S(b,c), S(c,a)"]),
            ("S1(x1) -> (S2(x2) -> exists y . T(x1,x2,y))",
             ["S1(a), S2(b)", "S1(a), S1(b), S2(c), S2(d)"]),
        ],
    )
    def test_threshold_dominates_observed_fblocks(self, text, sources):
        """For bounded mappings, the effective threshold really bounds the
        f-block size of core(chase(I)) on concrete instances."""
        try:
            tgd = parse_nested_tgd(text)
        except Exception:
            tgd = parse_tgd(text)
        verdict = decide_bounded_fblock_size([tgd])
        assert verdict.bounded
        bound = fblock_threshold([tgd])
        for source_text in sources:
            solution = core(chase(parse_instance(source_text), [tgd]))
            assert fact_block_size(solution) <= bound


class TestChaseOverNullSources:
    def test_chase_treats_source_nulls_as_values(self):
        """Two-step composition chases instances containing nulls."""
        tgd = parse_tgd("M(x,y) -> T(y,x)")
        source = parse_instance("M(a, _n1), M(_n1, b)")
        result = chase(source, [tgd])
        assert len(result) == 2
        assert len(result.nulls()) == 1
