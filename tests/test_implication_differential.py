"""Differential validation of IMPLIES (Theorem 3.1).

The pattern-based decision procedure must agree with brute-force semantic
implication over all small source instances -- on the paper's examples, on
curated tricky pairs, and on randomly generated dependencies.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.implication import implies_semantic_bounded, implies_tgd
from repro.logic.parser import parse_nested_tgd, parse_tgd

from tests.strategies import nested_tgds


CURATED_PAIRS = [
    # (lhs list, rhs, expected)
    ([parse_tgd("S2(x2) -> exists z . R(x2, z)")],
     parse_nested_tgd("S1(x1) -> exists y . (S2(x2) -> R(x2, y))"),
     False),
    ([parse_tgd("S1(x1) & S2(x2) -> R(x2, x1)")],
     parse_nested_tgd("S1(x1) -> exists y . (S2(x2) -> R(x2, y))"),
     True),
    ([parse_tgd("S(x,y) -> R(x,y)")],
     parse_nested_tgd("S(x,y) -> exists z . R(x,z)"),
     True),
    ([parse_tgd("S(x,y) -> exists z . R(x,z)")],
     parse_nested_tgd("S(x,y) -> R(x,y)"),
     False),
    ([parse_tgd("S(x,y) & S(y,x) -> R(x,y)")],
     parse_nested_tgd("S(x,x) -> R(x,x)"),
     True),
    ([parse_nested_tgd("S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))")],
     parse_nested_tgd("S(x1,x2) & S(x1,x3) -> exists y . (R(y,x2) & R(y,x3))"),
     True),
    ([parse_tgd("S(x1,x2) & S(x1,x3) -> exists y . (R(y,x2) & R(y,x3))")],
     parse_nested_tgd("S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))"),
     False),
]


class TestCuratedPairs:
    @pytest.mark.parametrize("lhs,rhs,expected", CURATED_PAIRS)
    def test_implies_matches_semantics(self, lhs, rhs, expected):
        assert implies_tgd(lhs, rhs).holds == expected
        assert implies_semantic_bounded(lhs, rhs, max_facts=3, max_constants=3) == expected


class TestRandomizedAgreement:
    @settings(
        max_examples=20, deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(lhs=nested_tgds(max_depth=2, max_children=1),
           rhs=nested_tgds(max_depth=2, max_children=1))
    def test_agreement_on_random_tgds(self, lhs, rhs):
        """IMPLIES and the bounded semantic checker agree on random pairs.

        If IMPLIES says yes, no small instance may refute; if IMPLIES says
        no, its counterexample canonical instance is genuine (checked
        directly), though it may be larger than the brute-force bound.
        """
        result = implies_tgd([lhs], rhs, max_patterns=20_000)
        if result.holds:
            assert implies_semantic_bounded([lhs], rhs, max_facts=2, max_constants=2)
        else:
            from repro.engine.chase import chase
            from repro.engine.homomorphism import find_homomorphism

            source = result.counterexample_source
            assert find_homomorphism(
                chase(source, [rhs]), chase(source, [lhs])
            ) is None
