"""Tests for the Turing machine simulator and the Theorem 5.1 reduction."""

import pytest

from repro.engine.chase import chase_so_tgd
from repro.engine.egd_chase import satisfies_egds
from repro.engine.gaifman import fblock_degree
from repro.turing.encoding import (
    NO_HEAD_RELATION,
    encode_run,
    head_relation,
    run_source_instance,
    symbol_relation,
)
from repro.turing.machine import (
    Configuration,
    Transition,
    TuringMachine,
    TuringMachineError,
    halting_machine,
    looping_machine,
    run_machine,
)
from repro.turing.reduction import (
    build_reduction,
    enumeration_chain_length,
    enumeration_fblock_size,
)


class TestMachine:
    def test_halting_machine_halts(self):
        result = run_machine(halting_machine(3), "", max_steps=10)
        assert result.halted
        assert result.steps == 3

    def test_looping_machine_does_not_halt(self):
        result = run_machine(looping_machine(), "", max_steps=10)
        assert not result.halted
        assert result.steps == 10

    def test_head_moves_right(self):
        result = run_machine(looping_machine(), "", max_steps=4)
        assert result.final.head == 4

    def test_tape_writes(self):
        result = run_machine(looping_machine(), "", max_steps=3)
        assert result.final.tape[:3] == ("1", "1", "1")

    def test_triangular_invariant(self):
        """In t steps the head reaches at most cell t (Figure 8's triangle)."""
        result = run_machine(looping_machine(), "", max_steps=10)
        for config in result.configurations:
            assert config.head <= config.time

    def test_nondeterminism_rejected(self):
        with pytest.raises(TuringMachineError):
            TuringMachine(
                states=["q"],
                blank="_",
                transitions=[
                    Transition("q", "_", "q", "1", "R"),
                    Transition("q", "_", "q", "0", "R"),
                ],
                initial_state="q",
                halting_states=[],
            )

    def test_invalid_move_rejected(self):
        with pytest.raises(TuringMachineError):
            Transition("q", "_", "q", "1", "X")

    def test_stuck_machine_counts_as_halted(self):
        machine = TuringMachine(
            states=["q"],
            blank="_",
            transitions=[],
            initial_state="q",
            halting_states=[],
        )
        assert run_machine(machine, "", max_steps=5).halted


class TestEncoding:
    def test_relations_present(self):
        inst = run_source_instance(halting_machine(2), "", max_steps=5)
        assert "S" in inst.relations()
        assert "Z" in inst.relations()
        assert NO_HEAD_RELATION in inst.relations()
        assert head_relation("q0") in inst.relations()
        assert symbol_relation("_") in inst.relations()

    def test_triangular_slices(self):
        inst = run_source_instance(looping_machine(), "", max_steps=3, length=3)
        # at time t there are t+1 symbol cells
        for t in range(4):
            time_facts = [
                f
                for f in inst
                if f.relation.startswith("Sym_") and repr(f.args[0]) == f"e{t}"
            ]
            assert len(time_facts) == t + 1

    def test_key_dependency_satisfied_by_intended_encoding(self):
        inst = run_source_instance(halting_machine(3), "", max_steps=5)
        reduction = build_reduction(halting_machine(3))
        assert satisfies_egds(inst, [reduction.key_dependency])

    def test_exactly_one_head_per_time(self):
        inst = run_source_instance(looping_machine(), "", max_steps=3, length=3)
        for t in range(4):
            heads = [
                f
                for f in inst
                if f.relation.startswith("Head_") and repr(f.args[0]) == f"e{t}"
            ]
            assert len(heads) <= 1


class TestReduction:
    def test_so_tgd_is_plain(self):
        for machine in (halting_machine(2), looping_machine()):
            assert build_reduction(machine).so_tgd.is_plain()

    def test_halting_machine_bounded_enumeration(self):
        """Theorem 5.1, halting direction: the origin chain stops growing."""
        machine = halting_machine(3)
        reduction = build_reduction(machine)
        lengths = []
        for n in (5, 7, 9):
            source = run_source_instance(machine, "", max_steps=n, length=n)
            target = chase_so_tgd(source, reduction.so_tgd)
            lengths.append(enumeration_chain_length(reduction, target))
        assert lengths[0] == lengths[1] == lengths[2] > 0

    def test_looping_machine_unbounded_enumeration(self):
        """Theorem 5.1, looping direction: the chain grows with n."""
        machine = looping_machine()
        reduction = build_reduction(machine)
        lengths = []
        for n in (4, 6, 8):
            source = run_source_instance(machine, "", max_steps=n, length=n)
            target = chase_so_tgd(source, reduction.so_tgd)
            lengths.append(enumeration_chain_length(reduction, target))
        assert lengths[0] < lengths[1] < lengths[2]

    def test_unbounded_fblock_with_bounded_fdegree(self):
        """Theorem 5.2's argument: the enumeration has growing f-blocks but
        f-degree stays bounded, so by Theorem 4.12 the gadget SO tgd is not
        equivalent to any nested GLAV mapping either."""
        machine = looping_machine()
        reduction = build_reduction(machine)
        degrees, sizes = [], []
        for n in (4, 6, 8):
            source = run_source_instance(machine, "", max_steps=n, length=n)
            target = chase_so_tgd(source, reduction.so_tgd)
            sizes.append(enumeration_fblock_size(target))
            degrees.append(fblock_degree(target))
        assert sizes[0] < sizes[1] < sizes[2]
        assert max(degrees) <= 4

    def test_enumeration_connected_to_origin(self):
        """The whole enumeration forms one block containing the origin."""
        machine = looping_machine()
        reduction = build_reduction(machine)
        source = run_source_instance(machine, "", max_steps=5, length=5)
        target = chase_so_tgd(source, reduction.so_tgd)
        assert enumeration_chain_length(reduction, target) == len(target)

    def test_broken_run_stops_enumeration(self):
        """Missing information (a truncated run) breaks the chain: the
        enumeration never reaches rows whose configurations are absent."""
        machine = looping_machine()
        reduction = build_reduction(machine)
        full = encode_run(run_machine(machine, "", max_steps=6), length=6)
        truncated = encode_run(run_machine(machine, "", max_steps=3), length=6)
        chain_full = enumeration_chain_length(
            reduction, chase_so_tgd(full, reduction.so_tgd)
        )
        chain_truncated = enumeration_chain_length(
            reduction, chase_so_tgd(truncated, reduction.so_tgd)
        )
        assert chain_truncated < chain_full
