"""Tests for the separation tools of Section 4.2 (Theorems 4.12, 4.16)."""

from repro.core.separation import (
    fblock_profile,
    nested_expressibility_report,
    path_length_bound,
)
from repro.logic.parser import parse_nested_tgd, parse_so_tgd, parse_tgd
from repro.workloads.families import (
    CYCLE_FAMILY,
    SUCCESSOR_FAMILY,
    SUCCESSOR_Q_FAMILY,
    InstanceFamily,
)


class TestProfiles:
    def test_prop_413_profile(self, so_tgd_413):
        """f-block size grows linearly; f-degree is 2 (the paper's values)."""
        profiles = fblock_profile([so_tgd_413], SUCCESSOR_FAMILY, [2, 4, 6])
        assert [p.fblock_size for p in profiles] == [2, 4, 6]
        assert [p.fdegree for p in profiles] == [1, 2, 2]

    def test_glav_profile_flat(self):
        tgd = parse_tgd("S(x,y) -> R(x,z)")
        profiles = fblock_profile([tgd], SUCCESSOR_FAMILY, [2, 4])
        assert all(p.fblock_size == 1 for p in profiles)

    def test_profile_records_family_name(self, so_tgd_413):
        profiles = fblock_profile([so_tgd_413], SUCCESSOR_FAMILY, [2])
        assert profiles[0].family == "successor"


class TestFDegreeTool:
    def test_prop_413_not_nested_expressible(self, so_tgd_413):
        report = nested_expressibility_report([so_tgd_413], SUCCESSOR_FAMILY, [2, 4, 6, 8])
        assert report.nested_expressible is False
        assert report.fblock_grows and report.fdegree_bounded
        assert "4.12" in report.reason

    def test_intro_nested_inconclusive_on_successors(self, intro_nested):
        """A nested tgd never violates its own necessary conditions."""
        report = nested_expressibility_report([intro_nested], SUCCESSOR_FAMILY, [2, 4, 6])
        assert report.nested_expressible is None


class TestPathLengthTool:
    def test_example_414_not_nested_expressible(self, so_tgd_414):
        report = nested_expressibility_report(
            [so_tgd_414], SUCCESSOR_Q_FAMILY, [2, 3, 4, 5]
        )
        assert report.nested_expressible is False
        # the fact graph is a clique (f-degree grows with f-block size), so
        # only the null graph separates: Theorem 4.16 must be the reason
        assert not report.fdegree_bounded
        assert report.path_length_grows
        assert "4.16" in report.reason

    def test_example_415_inconclusive(self, so_tgd_415):
        """Example 4.15's SO tgd is nested-expressible: same clique fact
        graphs as 4.14, but star-shaped null graphs (path length 2)."""
        report = nested_expressibility_report(
            [so_tgd_415], SUCCESSOR_Q_FAMILY, [2, 3, 4, 5]
        )
        assert report.nested_expressible is None
        assert [p.path_length for p in report.profiles] == [2, 2, 2, 2]

    def test_nested_tgds_have_bounded_path_length(
        self, intro_nested, nested_415, sigma_star
    ):
        """Theorem 4.16: the effective bound exists for every nested tgd."""
        for tgd in (intro_nested, nested_415, sigma_star):
            assert path_length_bound(tgd) >= 0

    def test_nested_415_bound_is_two(self, nested_415):
        """Figure 7's star null graph: longest simple path has 2 edges."""
        assert path_length_bound(nested_415) == 2

    def test_empirical_paths_stay_under_bound(self, nested_415):
        bound = path_length_bound(nested_415)
        profiles = fblock_profile([nested_415], SUCCESSOR_Q_FAMILY, [2, 4, 6])
        assert all(p.path_length <= bound for p in profiles)


class TestCycleFamily:
    def test_example_48_odd_cycles(self, so_tgd_48):
        """core(chase(I_n)) is the undirected n-cycle: one f-block of 2n facts."""
        profiles = fblock_profile([so_tgd_48], CYCLE_FAMILY, [0, 1, 2])
        # CYCLE_FAMILY(n) is the (2n+3)-cycle
        assert [p.fblock_size for p in profiles] == [6, 10, 14]
        # each fact R(f(i), f(i+1)) shares a null with its reverse and the
        # four facts of the two adjacent undirected edges: degree 5, constant
        assert [p.fdegree for p in profiles] == [5, 5, 5]

    def test_example_48_even_cycles_collapse(self, so_tgd_48):
        even = InstanceFamily("even-cycle", lambda n: __import__(
            "repro.workloads.generators", fromlist=["cycle_instance"]
        ).cycle_instance(2 * n + 4))
        profiles = fblock_profile([so_tgd_48], even, [0, 1])
        assert all(p.core_facts == 2 for p in profiles)
