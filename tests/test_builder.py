"""Tests for the fluent builder API."""

import pytest

from repro.core.implication import equivalent
from repro.errors import DependencyError
from repro.logic.builder import (
    Fun,
    Rel,
    make_nested,
    make_so_tgd,
    make_tgd,
    part,
    var,
    variables,
)
from repro.logic.parser import parse_nested_tgd, parse_so_tgd, parse_tgd


class TestBasics:
    def test_variables_split(self):
        x, y, z = variables("x y z")
        assert x.name == "x" and z.name == "z"

    def test_rel_builds_atoms(self):
        x, y = variables("x y")
        atom = Rel("S")(x, y)
        assert atom.relation == "S" and atom.args == (x, y)

    def test_rel_rejects_lowercase(self):
        with pytest.raises(DependencyError):
            Rel("s")

    def test_fun_builds_terms(self):
        x = var("x")
        term = Fun("f")(x)
        assert term.function == "f" and term.args == (x,)

    def test_fun_rejects_uppercase(self):
        with pytest.raises(DependencyError):
            Fun("F")


class TestTgdConstruction:
    def test_make_tgd_matches_parser(self):
        x, y, z = variables("x y z")
        S, R = Rel("S"), Rel("R")
        built = make_tgd([S(x, y)], [R(x, z)])
        assert built == parse_tgd("S(x,y) -> R(x,z)")

    def test_make_nested_matches_parser(self):
        x1, x2, x3, y = variables("x1 x2 x3 y")
        S, R = Rel("S"), Rel("R")
        built = make_nested(
            part(
                [S(x1, x2)],
                exists=[y],
                head=[R(y, x2)],
                children=[part([S(x1, x3)], head=[R(y, x3)])],
            )
        )
        parsed = parse_nested_tgd(
            "S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))"
        )
        assert built == parsed

    def test_make_nested_rescopes_shared_variables(self):
        """x1 in the child's body is bound by the root, not re-quantified."""
        x1, x2 = variables("x1 x2")
        S1, S2, T = Rel("S1"), Rel("S2"), Rel("T")
        built = make_nested(
            part([S1(x1)], children=[part([S2(x1, x2)], head=[T(x2)])])
        )
        assert built.part(1).universal_vars == (x1,)
        assert built.part(2).universal_vars == (x2,)

    def test_make_so_tgd_matches_parser(self):
        x, y = variables("x y")
        S, R, f = Rel("S"), Rel("R"), Fun("f")
        built = make_so_tgd([([S(x, y)], [R(f(x), f(y))])])
        assert built == parse_so_tgd("S(x,y) -> R(f(x), f(y))")

    def test_make_so_tgd_with_equalities(self):
        e = var("e")
        Emp, Mgr, SelfMgr, f = Rel("Emp"), Rel("Mgr"), Rel("SelfMgr"), Fun("f")
        built = make_so_tgd(
            [
                ([Emp(e)], [Mgr(e, f(e))]),
                ([Emp(e)], [(e, f(e))], [SelfMgr(e)]),
            ]
        )
        assert not built.is_plain()

    def test_bad_clause_shape_rejected(self):
        with pytest.raises(DependencyError):
            make_so_tgd([([Rel("S")(var("x"))],)])


class TestSemanticAgreement:
    def test_built_and_parsed_are_logically_equivalent(self):
        x, y, w = variables("x y w")
        S, R, P = Rel("S"), Rel("R"), Rel("P")
        built = make_tgd([S(x, y)], [R(x, w), P(w)])
        parsed = parse_tgd("S(x,y) -> R(x,w) & P(w)")
        assert equivalent([built], [parsed])
