"""Tests for schemas and relation symbols."""

import pytest

from repro.errors import SchemaError
from repro.logic.atoms import Atom
from repro.logic.schema import RelationSymbol, Schema, infer_schema
from repro.logic.values import Variable


class TestSchemaBasics:
    def test_build_from_pairs(self):
        schema = Schema([("S", 2), ("Q", 1)])
        assert schema.arity("S") == 2
        assert schema.arity("Q") == 1

    def test_build_from_symbols(self):
        schema = Schema([RelationSymbol("S", 2)])
        assert "S" in schema

    def test_membership(self):
        schema = Schema([("S", 2)])
        assert "S" in schema
        assert "T" not in schema

    def test_unknown_relation_raises(self):
        with pytest.raises(SchemaError):
            Schema([("S", 2)]).arity("T")

    def test_conflicting_arity_rejected(self):
        with pytest.raises(SchemaError):
            Schema([("S", 2), ("S", 3)])

    def test_duplicate_consistent_declaration_ok(self):
        schema = Schema([("S", 2), ("S", 2)])
        assert len(schema) == 1

    def test_negative_arity_rejected(self):
        with pytest.raises(SchemaError):
            RelationSymbol("S", -1)

    def test_iteration_preserves_order(self):
        schema = Schema([("B", 1), ("A", 2)])
        assert schema.names == ("B", "A")


class TestSchemaOperations:
    def test_disjointness(self):
        left = Schema([("S", 2)])
        right = Schema([("R", 2)])
        assert left.disjoint_from(right)
        assert not left.disjoint_from(Schema([("S", 1)]))

    def test_union_merges(self):
        union = Schema([("S", 2)]).union(Schema([("R", 1)]))
        assert set(union.names) == {"S", "R"}

    def test_union_conflicting_arity_raises(self):
        with pytest.raises(SchemaError):
            Schema([("S", 2)]).union(Schema([("S", 3)]))

    def test_equality(self):
        assert Schema([("S", 2)]) == Schema([("S", 2)])
        assert Schema([("S", 2)]) != Schema([("S", 1)])


class TestInference:
    def test_infer_schema_from_atoms(self):
        x = Variable("x")
        schema = infer_schema([Atom("S", (x, x)), Atom("Q", (x,))])
        assert schema.arity("S") == 2
        assert schema.arity("Q") == 1

    def test_infer_conflicting_arities_raises(self):
        x = Variable("x")
        with pytest.raises(SchemaError):
            infer_schema([Atom("S", (x,)), Atom("S", (x, x))])
