"""Tests for the SchemaMapping facade."""

import pytest

from repro.errors import DependencyError, SchemaError
from repro.logic.egds import KeyDependency
from repro.logic.parser import parse_egd, parse_instance, parse_nested_tgd, parse_tgd
from repro.mappings import SchemaMapping


class TestConstruction:
    def test_schemas_inferred(self, intro_nested):
        mapping = SchemaMapping([intro_nested])
        assert "S" in mapping.source_schema
        assert "R" in mapping.target_schema

    def test_empty_dependencies_rejected(self):
        with pytest.raises(DependencyError):
            SchemaMapping([])

    def test_egds_normalized_from_key_dependency(self):
        mapping = SchemaMapping(
            [parse_tgd("S(x,y) -> R(x,y)")], source_egds=[KeyDependency("S", 2, key=[1])]
        )
        assert len(mapping.source_egds) == 1

    def test_overlapping_schemas_rejected(self):
        from repro.logic.schema import Schema

        with pytest.raises(SchemaError):
            SchemaMapping(
                [parse_tgd("S(x,y) -> R(x,y)")],
                source_schema=Schema([("S", 2), ("R", 2)]),
                target_schema=Schema([("R", 2)]),
            )

    def test_classification(self, intro_nested, so_tgd_413):
        assert SchemaMapping([parse_tgd("S(x) -> R(x)")]).is_glav()
        nested = SchemaMapping([intro_nested])
        assert not nested.is_glav() and nested.is_nested_glav()
        so = SchemaMapping([so_tgd_413])
        assert not so.is_nested_glav()


class TestSemantics:
    def test_is_solution(self):
        mapping = SchemaMapping([parse_tgd("S(x,y) -> R(x,y)")])
        source = parse_instance("S(a,b)")
        assert mapping.is_solution(source, parse_instance("R(a,b)"))
        assert not mapping.is_solution(source, parse_instance(""))

    def test_egds_gate_solutions(self):
        mapping = SchemaMapping(
            [parse_tgd("S(x,y) -> R(x,y)")],
            source_egds=[parse_egd("S(x,y) & S(x,z) -> y = z")],
        )
        bad_source = parse_instance("S(a,b), S(a,c)")
        assert not mapping.is_solution(bad_source, parse_instance("R(a,b), R(a,c)"))

    def test_chase_and_core_solution(self, intro_nested, small_source):
        mapping = SchemaMapping([intro_nested])
        J = mapping.chase(small_source)
        C = mapping.core_solution(small_source)
        assert C <= J
        # for this source both y-blocks are isomorphic: core keeps one
        assert len(C) == 2 and len(J) == 4

    def test_universal_solution_check(self):
        mapping = SchemaMapping([parse_tgd("S(x,y) -> R(x,z)")])
        source = parse_instance("S(a,b)")
        assert mapping.is_universal_solution(source, mapping.chase(source))
        # a solution that is too specific is not universal
        assert not mapping.is_universal_solution(source, parse_instance("R(a,a)"))

    def test_nested_dependencies_conversion(self, intro_nested):
        mapping = SchemaMapping([parse_tgd("S(x,y) -> P(x)"), intro_nested])
        assert len(mapping.nested_dependencies()) == 2
