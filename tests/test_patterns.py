"""Tests for the pattern machinery (Definitions 3.2/3.3, Proposition 3.5)."""

import pytest

from repro.core.patterns import (
    Pattern,
    count_k_patterns,
    enumerate_k_patterns,
    full_pattern,
    one_patterns,
    patterns_up_to_size,
)
from repro.errors import DependencyError, ResourceLimitExceeded
from repro.logic.parser import parse_nested_tgd, parse_tgd


class TestPatternBasics:
    def test_children_canonically_ordered(self):
        left = Pattern(1, (Pattern(2), Pattern(3)))
        right = Pattern(1, (Pattern(3), Pattern(2)))
        assert left == right
        assert hash(left) == hash(right)

    def test_node_count(self):
        p = Pattern(1, (Pattern(2), Pattern(3, (Pattern(4),))))
        assert p.node_count == 4

    def test_subtrees_preorder(self):
        p = Pattern(1, (Pattern(2), Pattern(3, (Pattern(4),))))
        assert [t.part_id for t in p.subtrees()] == [1, 2, 3, 4]

    def test_multiplicity(self):
        p = Pattern(1, (Pattern(2), Pattern(2), Pattern(3)))
        assert p.multiplicity(Pattern(2)) == 2
        assert p.multiplicity(Pattern(3)) == 1

    def test_is_k_pattern(self):
        p = Pattern(1, (Pattern(2), Pattern(2), Pattern(2)))
        assert p.is_k_pattern(3)
        assert not p.is_k_pattern(2)

    def test_isomorphic_subtrees_in_different_positions(self):
        p = Pattern(1, (Pattern(3, (Pattern(4),)), Pattern(3, (Pattern(4),))))
        assert p.max_clone_count() == 2


class TestCloning:
    def test_with_extra_clone(self):
        p = Pattern(1, (Pattern(2),))
        cloned = p.with_extra_clone((0,))
        assert cloned.multiplicity(Pattern(2)) == 2

    def test_with_clones_multiple(self):
        p = Pattern(1, (Pattern(2),))
        assert p.with_clones((0,), 3).multiplicity(Pattern(2)) == 4

    def test_clone_deeper_subtree(self):
        p = Pattern(1, (Pattern(3, (Pattern(4),)),))
        cloned = p.with_extra_clone((0, 0))
        assert cloned.children[0].multiplicity(Pattern(4)) == 2

    def test_cloning_root_rejected(self):
        with pytest.raises(DependencyError):
            Pattern(1).with_extra_clone(())

    def test_invalid_path_rejected(self):
        with pytest.raises(DependencyError):
            Pattern(1, (Pattern(2),)).with_extra_clone((5,))


class TestValidation:
    def test_valid_pattern(self, sigma_star):
        Pattern(1, (Pattern(2), Pattern(3, (Pattern(4),)))).validate_against(sigma_star)

    def test_wrong_root_rejected(self, sigma_star):
        with pytest.raises(DependencyError):
            Pattern(2).validate_against(sigma_star)

    def test_wrong_nesting_rejected(self, sigma_star):
        with pytest.raises(DependencyError):
            Pattern(1, (Pattern(4),)).validate_against(sigma_star)


class TestEnumeration:
    def test_figure_1_eight_one_patterns(self, sigma_star):
        """Figure 1 of the paper: sigma has exactly eight 1-patterns."""
        patterns = one_patterns(sigma_star)
        assert len(patterns) == 8
        expected = {
            Pattern(1),
            Pattern(1, (Pattern(2),)),
            Pattern(1, (Pattern(3),)),
            Pattern(1, (Pattern(2), Pattern(3))),
            Pattern(1, (Pattern(3, (Pattern(4),)),)),
            Pattern(1, (Pattern(2), Pattern(3, (Pattern(4),)))),
            Pattern(1, (Pattern(3), Pattern(3, (Pattern(4),)))),
            Pattern(1, (Pattern(2), Pattern(3), Pattern(3, (Pattern(4),)))),
        }
        assert set(patterns) == expected

    def test_example_310_three_patterns_at_k3(self, tau_310):
        """Example 3.10: P_3(tau) = {p', p'', p''_2, p''_3}."""
        patterns = enumerate_k_patterns(tau_310, 3)
        assert len(patterns) == 4
        assert Pattern(1) in patterns
        assert Pattern(1, (Pattern(2), Pattern(2), Pattern(2))) in patterns

    def test_every_enumerated_pattern_is_a_k_pattern(self, sigma_star):
        for k in (1, 2):
            for p in enumerate_k_patterns(sigma_star, k):
                assert p.is_k_pattern(k)
                p.validate_against(sigma_star)

    def test_smallest_first_order(self, sigma_star):
        patterns = one_patterns(sigma_star)
        sizes = [p.node_count for p in patterns]
        assert sizes == sorted(sizes)

    def test_flat_tgd_single_pattern(self):
        tgd = parse_tgd("S(x,y) -> R(x,y)").to_nested()
        assert enumerate_k_patterns(tgd, 5) == [Pattern(1)]

    def test_k_must_be_positive(self, sigma_star):
        with pytest.raises(DependencyError):
            enumerate_k_patterns(sigma_star, 0)

    def test_resource_limit(self, sigma_star):
        with pytest.raises(ResourceLimitExceeded):
            enumerate_k_patterns(sigma_star, 3, max_patterns=5)


class TestCounting:
    def test_count_matches_enumeration(self, sigma_star, tau_310):
        for tgd in (sigma_star, tau_310):
            for k in (1, 2):
                assert count_k_patterns(tgd, k) == len(
                    enumerate_k_patterns(tgd, k, max_patterns=None)
                )

    def test_count_is_nonelementary_in_depth(self):
        """A depth-3 linear nesting already produces (k+1)^((k+1)^1)-style growth."""
        tgd = parse_nested_tgd("S1(x1) -> (S2(x2) -> (S3(x3) -> R(x1,x2,x3)))")
        assert count_k_patterns(tgd, 1) == 2 ** 2
        assert count_k_patterns(tgd, 2) == 3 ** (3 ** 1)

    def test_count_example_310(self, tau_310):
        assert count_k_patterns(tau_310, 3) == 4


class TestSizeBoundedEnumeration:
    def test_sizes_respected(self, sigma_star):
        for p in patterns_up_to_size(sigma_star, 3):
            assert p.node_count <= 3

    def test_contains_duplicated_siblings(self, tau_310):
        patterns = patterns_up_to_size(tau_310, 4)
        assert Pattern(1, (Pattern(2), Pattern(2), Pattern(2))) in patterns

    def test_no_duplicates(self, sigma_star):
        patterns = patterns_up_to_size(sigma_star, 5)
        assert len(patterns) == len(set(patterns))

    def test_full_pattern(self, sigma_star):
        p = full_pattern(sigma_star)
        assert p.node_count == 4
        p.validate_against(sigma_star)
