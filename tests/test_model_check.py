"""Tests for model checking of s-t tgds, nested tgds, and SO tgds."""

from repro.engine.model_check import satisfies, satisfies_nested, satisfies_so
from repro.logic.parser import (
    parse_egd,
    parse_instance,
    parse_nested_tgd,
    parse_so_tgd,
    parse_tgd,
)


class TestSTTgds:
    def test_satisfied(self):
        assert satisfies(
            parse_instance("S(a,b)"), parse_instance("R(a,b)"), parse_tgd("S(x,y) -> R(x,y)")
        )

    def test_violated(self):
        assert not satisfies(
            parse_instance("S(a,b)"), parse_instance("R(b,a)"), parse_tgd("S(x,y) -> R(x,y)")
        )

    def test_existential_witness_found(self):
        assert satisfies(
            parse_instance("S(a,b)"),
            parse_instance("R(a,c)"),
            parse_tgd("S(x,y) -> R(x,z)"),
        )

    def test_empty_source_vacuously_satisfied(self):
        assert satisfies(
            parse_instance(""), parse_instance(""), parse_tgd("S(x,y) -> R(x,y)")
        )


class TestNestedTgds:
    def test_shared_existential_across_nested_part(self, intro_nested):
        """The same witness y must serve all x3 matches of the inner part."""
        source = parse_instance("S(a,b), S(a,c)")
        good = parse_instance("R(e,b), R(e,c)")
        bad = parse_instance("R(e,b), R(d,c)")  # no single y works for R(y,b) & R(y,c)
        assert satisfies_nested(source, good, intro_nested)
        assert not satisfies_nested(source, bad, intro_nested)

    def test_existential_only_used_downstream(self, tau_310):
        """tau: S1(x1) -> exists y forall x2 (S2(x2) -> R(x2,y))."""
        source = parse_instance("S1(a), S2(b), S2(c)")
        good = parse_instance("R(b,w), R(c,w)")
        bad = parse_instance("R(b,w), R(c,v)")
        assert satisfies_nested(source, good, tau_310)
        assert not satisfies_nested(source, bad, tau_310)

    def test_vacuous_inner_part(self, tau_310):
        # no S2 facts: any y works
        assert satisfies_nested(parse_instance("S1(a)"), parse_instance(""), tau_310)

    def test_chase_result_satisfies(self, sigma_star):
        from repro.engine.nested_chase import chase_nested

        source = parse_instance("S1(a), S2(b), S3(a,c), S4(c,d)")
        J = chase_nested(source, sigma_star).instance
        assert satisfies_nested(source, J, sigma_star)


class TestSOTgds:
    def test_function_witness_found(self, so_tgd_413):
        source = parse_instance("S(a,b)")
        assert satisfies_so(source, parse_instance("R(c,d)"), so_tgd_413)

    def test_functionality_enforced(self, so_tgd_413):
        """f(b) must be a single value serving both S(a,b) and S(b,c)."""
        source = parse_instance("S(a,b), S(b,c)")
        good = parse_instance("R(u,v), R(v,w)")
        bad = parse_instance("R(u,v), R(x,w)")  # f(b) cannot be both v and x
        assert satisfies_so(source, good, so_tgd_413)
        assert not satisfies_so(source, bad, so_tgd_413)

    def test_equality_clause_can_be_avoided(self):
        so = parse_so_tgd("Emp(e) -> Mgr(e, f(e)) ; Emp(e) & e = f(e) -> SelfMgr(e)")
        # choose f(a) != a: SelfMgr not required
        assert satisfies_so(parse_instance("Emp(a)"), parse_instance("Mgr(a,b)"), so)

    def test_equality_clause_forced(self):
        so = parse_so_tgd("Emp(e) -> Mgr(e, e)")
        # Mgr(a, a) forces nothing second-order here; sanity: plain satisfaction
        assert satisfies_so(parse_instance("Emp(a)"), parse_instance("Mgr(a,a)"), so)

    def test_self_manager_example(self):
        """If the only manager fact is Mgr(a,a), f(a) = a is forced, so
        SelfMgr(a) is required."""
        so = parse_so_tgd("Emp(e) -> Mgr(e, f(e)) ; Emp(e) & e = f(e) -> SelfMgr(e)")
        source = parse_instance("Emp(a)")
        without = parse_instance("Mgr(a,a)")
        with_self = parse_instance("Mgr(a,a), SelfMgr(a)")
        assert not satisfies_so(source, without, so)
        assert satisfies_so(source, with_self, so)

    def test_nested_terms(self):
        so = parse_so_tgd("S(x) -> R(f(g(x)))")
        assert satisfies_so(parse_instance("S(a)"), parse_instance("R(b)"), so)
        assert not satisfies_so(parse_instance("S(a)"), parse_instance(""), so)


class TestDispatch:
    def test_egd_checked_on_source(self):
        egd = parse_egd("S(x,y) & S(x,z) -> y = z")
        assert satisfies(parse_instance("S(a,b)"), parse_instance(""), egd)
        assert not satisfies(parse_instance("S(a,b), S(a,c)"), parse_instance(""), egd)

    def test_list_of_dependencies(self):
        deps = [parse_tgd("S(x,y) -> R(x,y)"), parse_tgd("S(x,y) -> P(x)")]
        assert satisfies(parse_instance("S(a,b)"), parse_instance("R(a,b), P(a)"), deps)
        assert not satisfies(parse_instance("S(a,b)"), parse_instance("R(a,b)"), deps)
