"""Smoke tests: every example script runs end to end and tells its story."""

import importlib.util
import pathlib
import sys

import pytest


EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "core of the universal solution" in out
        assert "sigma equivalent to its reordering: True" in out

    def test_clio_order_exchange(self, capsys):
        out = run_example("clio_order_exchange.py", capsys)
        assert "nested implies flat: True" in out
        assert "flat implies nested: False" in out
        assert "expressible as a GLAV mapping: False" in out

    def test_expressiveness_tour(self, capsys):
        out = run_example("expressiveness_tour.py", capsys)
        assert "NOT nested-GLAV expressible" in out
        assert "inconclusive" in out
        assert "path-length bound (Theorem 4.16) is 2" in out

    def test_mapping_optimization(self, capsys):
        out = run_example("mapping_optimization.py", capsys)
        assert "after redundancy removal: 2 dependencies" in out
        assert "not GLAV-expressible" in out
        assert "equivalent GLAV mapping (relative to the egd)" in out

    def test_turing_demo(self, capsys):
        out = run_example("turing_demo.py", capsys)
        assert "halting machine" in out and "looping machine" in out

    def test_data_integration(self, capsys):
        out = run_example("data_integration.py", capsys)
        assert "certain under nested mapping" in out
        assert "nested implies flat: True" in out

    def test_composition_pipeline(self, capsys):
        out = run_example("composition_pipeline.py", capsys)
        assert "two-step chase agrees (hom-equivalent): True" in out
        assert "nested Skolem terms" in out

    def test_sql_exchange(self, capsys):
        out = run_example("sql_exchange.py", capsys)
        assert "INSERT INTO" in out
        assert "agrees with the oblivious chase (up to null labels): True" in out
