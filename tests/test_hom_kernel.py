"""Differential property tests for the indexed homomorphism kernel and the
block-memoizing core engine.

The kernel (:mod:`repro.engine.hom_kernel`) and the new worklist core
(:mod:`repro.engine.core_instance`) must agree with the naive oracles kept in
:mod:`repro.engine.naive` on random instances drawn from
:func:`tests.strategies.instances`, including the degenerate regimes: ground
(all-constant) instances, empty instances, and single-null blocks.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.engine.core_instance import clear_fold_cache, core, is_core
from repro.engine.homomorphism import (
    find_homomorphism,
    homomorphically_equivalent,
    is_homomorphism,
)
from repro.engine.naive import core_naive, find_homomorphism_naive
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.parser import parse_instance
from repro.logic.values import Constant, Null

from tests.strategies import instances


class TestKernelAgreesWithNaive:
    @settings(max_examples=120, deadline=None)
    @given(source=instances(), target=instances())
    def test_same_existence_verdict(self, source, target):
        fast = find_homomorphism(source, target)
        slow = find_homomorphism_naive(source, target)
        assert (fast is None) == (slow is None)
        if fast is not None:
            assert is_homomorphism(fast, source, target)

    @settings(max_examples=60, deadline=None)
    @given(source=instances(max_nulls=0), target=instances())
    def test_ground_source(self, source, target):
        # All-constant sources: a homomorphism exists iff source <= target.
        fast = find_homomorphism(source, target)
        expected = all(fact in target.facts for fact in source)
        assert (fast is not None) == expected
        slow = find_homomorphism_naive(source, target)
        assert (slow is None) == (fast is None)

    @settings(max_examples=40, deadline=None)
    @given(target=instances())
    def test_empty_source(self, target):
        assert find_homomorphism(Instance(()), target) == {}

    @settings(max_examples=60, deadline=None)
    @given(target=instances())
    def test_single_null_block(self, target):
        source = Instance([Atom("R", (Constant("a0"), Null("n0")))])
        fast = find_homomorphism(source, target)
        slow = find_homomorphism_naive(source, target)
        assert (fast is None) == (slow is None)
        if fast is not None:
            assert is_homomorphism(fast, source, target)

    @settings(max_examples=60, deadline=None)
    @given(source=instances(), target=instances())
    def test_fixed_bindings_respected(self, source, target):
        nulls = sorted(source.nulls(), key=repr)
        if not nulls:
            return
        for candidate in sorted(target.active_domain(), key=repr)[:2]:
            fixed = {nulls[0]: candidate}
            fast = find_homomorphism(source, target, fixed=fixed)
            slow = find_homomorphism_naive(source, target, fixed=fixed)
            assert (fast is None) == (slow is None)
            if fast is not None:
                assert fast[nulls[0]] == candidate
                assert is_homomorphism(fast, source, target)

    def test_identity_on_self(self):
        instance = parse_instance("R(a, _x), R(_x, b), P(_y)")
        mapping = find_homomorphism(instance, instance)
        assert mapping is not None
        assert is_homomorphism(mapping, instance, instance)


class TestCoreAgreesWithNaive:
    @settings(max_examples=80, deadline=None)
    @given(instance=instances())
    def test_cores_hom_equivalent_and_same_size(self, instance):
        clear_fold_cache()
        fast = core(instance)
        slow = core_naive(instance)
        # Cores of hom-equivalent instances are unique up to isomorphism, so
        # both engines must land on instances of the same size that are
        # hom-equivalent to each other (and to the input).
        assert len(fast) == len(slow)
        assert homomorphically_equivalent(fast, slow)
        assert homomorphically_equivalent(fast, instance)

    @settings(max_examples=80, deadline=None)
    @given(instance=instances())
    def test_core_is_subinstance_and_core(self, instance):
        folded = core(instance)
        assert folded.facts <= instance.facts
        assert is_core(folded)

    @settings(max_examples=60, deadline=None)
    @given(instance=instances())
    def test_core_idempotent(self, instance):
        folded = core(instance)
        assert core(folded).facts == folded.facts

    @settings(max_examples=40, deadline=None)
    @given(instance=instances(max_nulls=0))
    def test_ground_instances_are_their_own_core(self, instance):
        assert core(instance).facts == instance.facts
        assert is_core(instance)

    def test_empty_instance(self):
        assert len(core(Instance(()))) == 0

    @pytest.mark.parametrize("workers", [2])
    @settings(max_examples=10, deadline=None)
    @given(instance=instances(max_facts=6))
    def test_parallel_matches_serial(self, instance, workers):
        clear_fold_cache()
        serial = core(instance)
        clear_fold_cache()
        parallel = core(instance, parallel=workers)
        assert serial.facts == parallel.facts

    def test_isomorphic_blocks_fold_to_one(self):
        instance = parse_instance(
            "R(a, _x1), R(_x1, b), R(a, _x2), R(_x2, b), R(a, _x3), R(_x3, b)"
        )
        folded = core(instance)
        assert len(folded) == 2
        assert len(folded.nulls()) == 1
