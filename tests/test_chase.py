"""Tests for the oblivious chase (s-t tgds and SO tgds)."""

from repro.engine.chase import chase, chase_so_tgd, chase_st_tgds
from repro.engine.homomorphism import has_homomorphism
from repro.engine.model_check import satisfies
from repro.logic.parser import parse_instance, parse_so_tgd, parse_tgd


class TestSTTgdChase:
    def test_simple_copy(self):
        J = chase_st_tgds(parse_instance("S(a,b)"), [parse_tgd("S(x,y) -> R(x,y)")])
        assert J == parse_instance("R(a,b)")

    def test_existential_creates_null(self):
        J = chase_st_tgds(parse_instance("S(a,b)"), [parse_tgd("S(x,y) -> R(x,z)")])
        assert len(J) == 1
        assert len(J.nulls()) == 1

    def test_one_null_per_body_match(self):
        J = chase_st_tgds(
            parse_instance("S(a,b), S(a,c)"), [parse_tgd("S(x,y) -> R(x,z)")]
        )
        assert len(J.nulls()) == 2

    def test_shared_existential_within_head(self):
        J = chase_st_tgds(
            parse_instance("S(a,b)"), [parse_tgd("S(x,y) -> R(x,z) & T(z,y)")]
        )
        r_fact = J.facts_of("R")[0]
        t_fact = J.facts_of("T")[0]
        assert r_fact.args[1] == t_fact.args[0]

    def test_join_body(self):
        J = chase_st_tgds(
            parse_instance("S(a,b), S(b,c)"),
            [parse_tgd("S(x,y) & S(y,z) -> R(x,z)")],
        )
        assert J == parse_instance("R(a,c)")

    def test_multiple_tgds_do_not_share_nulls(self):
        J = chase_st_tgds(
            parse_instance("S(a,b)"),
            [parse_tgd("S(x,y) -> R(x,z)"), parse_tgd("S(x,y) -> T(x,z)")],
        )
        assert len(J.nulls()) == 2

    def test_empty_source_chases_to_empty(self):
        assert len(chase_st_tgds(parse_instance(""), [parse_tgd("S(x) -> R(x)")])) == 0


class TestSOTgdChase:
    def test_skolem_terms_deduplicate(self, so_tgd_413):
        # f(e1) from S(e0,e1) and S(e1,e2) is the same null
        J = chase_so_tgd(parse_instance("S(a,b), S(b,c)"), so_tgd_413)
        assert len(J.nulls()) == 3
        assert len(J) == 2

    def test_equalities_evaluated_over_term_algebra(self):
        so = parse_so_tgd("Emp(e) -> Mgr(e, f(e)) ; Emp(e) & e = f(e) -> SelfMgr(e)")
        J = chase_so_tgd(parse_instance("Emp(a)"), so)
        # e = f(e) never holds in the term algebra, so SelfMgr is never produced
        assert J.facts_of("SelfMgr") == ()
        assert len(J.facts_of("Mgr")) == 1

    def test_trivial_equality_fires(self):
        so = parse_so_tgd("S(x,y) & f(x) = f(x) -> R(f(x))")
        J = chase_so_tgd(parse_instance("S(a,b)"), so)
        assert len(J) == 1

    def test_nested_terms_build_nested_nulls(self):
        so = parse_so_tgd("S(x) -> R(f(g(x)))")
        J = chase_so_tgd(parse_instance("S(a)"), so)
        null = next(iter(J.nulls()))
        assert null.function == "f"
        assert null.args[0].function == "g"


class TestUniversality:
    """chase(I, M) is a universal solution: it maps into every solution."""

    def test_chase_maps_into_other_solutions(self):
        tgd = parse_tgd("S(x,y) -> R(x,z)")
        source = parse_instance("S(a,b)")
        canonical = chase(source, tgd)
        for solution_text in ["R(a,c)", "R(a,a)", "R(a,c), R(c,c)"]:
            solution = parse_instance(solution_text)
            assert satisfies(source, solution, tgd)
            assert has_homomorphism(canonical, solution)

    def test_chase_is_a_solution(self, intro_nested):
        source = parse_instance("S(a,b), S(a,c)")
        assert satisfies(source, chase(source, intro_nested), intro_nested)

    def test_chase_so_tgd_is_a_solution(self, so_tgd_413):
        source = parse_instance("S(a,b), S(b,c)")
        assert satisfies(source, chase(source, so_tgd_413), so_tgd_413)


class TestDispatch:
    def test_mixed_dependencies(self, intro_nested):
        deps = [parse_tgd("S(x,y) -> P(x)"), intro_nested]
        J = chase(parse_instance("S(a,b)"), deps)
        assert "P" in J.relations() and "R" in J.relations()

    def test_single_dependency_accepted(self):
        J = chase(parse_instance("S(a,b)"), parse_tgd("S(x,y) -> R(x,y)"))
        assert len(J) == 1

    def test_distinct_so_tgds_do_not_share_nulls(self, so_tgd_413):
        other = parse_so_tgd("S(x,y) -> T(f(x))")
        J = chase(parse_instance("S(a,b)"), [so_tgd_413, other])
        r_nulls = {n for f in J.facts_of("R") for n in f.nulls()}
        t_nulls = {n for f in J.facts_of("T") for n in f.nulls()}
        assert not r_nulls & t_nulls
