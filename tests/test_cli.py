"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_dependency
from repro.logic.nested import NestedTgd
from repro.logic.sotgd import SOTgd


INTRO = "S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))"


class TestDependencyAutoDetection:
    def test_flat_tgd_parses_as_nested(self):
        assert isinstance(parse_dependency("S(x,y) -> R(x,y)"), NestedTgd)

    def test_nested_tgd(self):
        assert isinstance(parse_dependency(INTRO), NestedTgd)

    def test_so_tgd_via_function_terms(self):
        assert isinstance(parse_dependency("S(x,y) -> R(f(x), f(y))"), SOTgd)

    def test_so_tgd_via_clauses(self):
        dep = parse_dependency("S(x) -> R(f(x)) ; T(y) -> R(g(y))")
        assert isinstance(dep, SOTgd)


class TestCommands:
    def test_chase(self, capsys):
        code = main(["chase", "--dep", "S(x,y) -> R(x,y)", "--instance", "S(a,b)"])
        assert code == 0
        assert "R(a, b)" in capsys.readouterr().out

    def test_chase_core(self, capsys):
        code = main(
            ["chase", "--dep", INTRO, "--instance", "S(a,b), S(a,c)", "--core"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("R(") == 2  # core keeps one block

    def test_implies_positive(self, capsys):
        code = main(
            [
                "implies",
                "--lhs", "S1(x1) & S2(x2) -> R(x2, x1)",
                "--rhs", "S1(x1) -> exists y . (S2(x2) -> R(x2, y))",
            ]
        )
        assert code == 0
        assert "implies: True" in capsys.readouterr().out

    def test_implies_negative_exit_code(self, capsys):
        code = main(
            [
                "implies",
                "--lhs", "S2(x2) -> exists z . R(x2, z)",
                "--rhs", "S1(x1) -> exists y . (S2(x2) -> R(x2, y))",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "implies: False" in out
        assert "counterexample source" in out

    def test_implies_with_egd(self, capsys):
        code = main(
            [
                "implies",
                "--lhs", "S(x,y) -> R2(y,y)",
                "--rhs", "S(x,y) & S(x,z) -> R2(y,z)",
                "--egd", "S(x,y) & S(x,z) -> y = z",
            ]
        )
        assert code == 0

    def test_equivalent(self, capsys):
        code = main(
            [
                "equivalent",
                "--left", "S(x,y) & T(y,z) -> R(x,z)",
                "--right", "T(y,z) & S(x,y) -> R(x,z)",
            ]
        )
        assert code == 0
        assert "equivalent: True" in capsys.readouterr().out

    def test_glav_unbounded(self, capsys):
        code = main(["glav", "--dep", INTRO])
        assert code == 1
        out = capsys.readouterr().out
        assert "bounded f-block size: False" in out
        assert "witness pattern" in out

    def test_glav_bounded_prints_mapping(self, capsys):
        code = main(["glav", "--dep", "S1(x1) -> (S2(x2) -> T(x1, x2))"])
        assert code == 0
        out = capsys.readouterr().out
        assert "equivalent GLAV mapping" in out
        assert "S1(x1) & S2(x2) -> T(x1, x2)" in out

    def test_patterns(self, capsys):
        code = main(["patterns", "--dep", INTRO, "--k", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "|P_2| = 3" in out

    def test_patterns_respects_limit(self, capsys):
        code = main(["patterns", "--dep", INTRO, "--k", "3", "--limit", "2"])
        assert code == 0
        assert "not enumerating" in capsys.readouterr().out

    def test_profile(self, capsys):
        code = main(
            [
                "profile",
                "--dep", "S(x,y) -> R(f(x), f(y))",
                "--family", "successor",
                "--sizes", "2,4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verdict" in out

    def test_optimize(self, capsys):
        code = main(
            [
                "optimize",
                "--dep", "S(x,y) -> R(x,y)",
                "--dep", "S(x,y) -> exists z . R(x,z)",
            ]
        )
        assert code == 0
        assert "2 dependencies -> 1" in capsys.readouterr().out

    def test_sql(self, capsys):
        code = main(["sql", "--dep", "S(x,y) -> R(y,x)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CREATE TABLE S" in out
        assert "INSERT INTO R SELECT DISTINCT a0.c1, a0.c0 FROM S AS a0;" in out

    def test_sql_rejects_so_tgds(self, capsys):
        code = main(["sql", "--dep", "S(x,y) -> R(f(x), f(y))"])
        assert code == 2  # SO tgds are not nested GLAV: clean error

    def test_certain(self, capsys):
        code = main(
            [
                "certain",
                "--dep", "S(x,y) -> R(x,z)",
                "--dep", "S(x,y) -> R(x,y)",
                "--instance", "S(a,b)",
                "--query", "q(x, y) :- R(x, y)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "a, b" in out
        assert "1 certain answer(s)" in out

    def test_parse_error_reported(self, capsys):
        code = main(["chase", "--dep", "S(x -> R(x)", "--instance", "S(a)"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_dep_rejected(self):
        with pytest.raises(SystemExit):
            main(["chase", "--instance", "S(a)"])


class TestCacheCommand:
    def test_stats_disabled(self, capsys):
        import json

        code = main(["cache", "stats"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"enabled": False, "path": None}

    def test_clear_disabled_exits_1(self, capsys):
        import json

        code = main(["cache", "clear"])
        assert code == 1
        assert json.loads(capsys.readouterr().out)["enabled"] is False

    def test_stats_with_dir(self, capsys, tmp_path):
        import json

        from repro.cache import disk_put

        code = main(["cache", "stats", "--dir", str(tmp_path)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["enabled"] is True
        assert payload["entries"] == {}
        assert payload["schema_version"] >= 1
        disk_put("chase", "cli-key", ("v",))
        code = main(["cache", "stats", "--dir", str(tmp_path)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == {"chase": 1}

    def test_clear_and_vacuum_with_dir(self, capsys, tmp_path):
        import json

        from repro.cache import configure, disk_get, disk_put

        configure(tmp_path)
        disk_put("implies", "cli-key", ("verdict",))
        code = main(["cache", "clear", "--dir", str(tmp_path)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == {}
        assert disk_get("implies", "cli-key") is None
        code = main(["cache", "vacuum", "--dir", str(tmp_path)])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["enabled"] is True

    def test_output_is_deterministic_json(self, capsys, tmp_path):
        import json

        code = main(["cache", "stats", "--dir", str(tmp_path)])
        assert code == 0
        first = json.loads(capsys.readouterr().out)
        code = main(["cache", "stats", "--dir", str(tmp_path)])
        assert code == 0
        second = json.loads(capsys.readouterr().out)
        # size_bytes tracks the WAL, which breathes between calls
        first.pop("size_bytes"), second.pop("size_bytes")
        assert first == second
