"""Contract tests for the public API surface.

Everything exported in ``repro.__all__`` must resolve, and every public item
of the package must carry a docstring (documentation-coverage check, part of
deliverable (e)).
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


PUBLIC_MODULES = [
    name
    for __, name, __ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.rsplit(".", 1)[-1].startswith("_")
]


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_imports(self, module_name):
        importlib.import_module(module_name)


class TestDocumentation:
    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    def test_public_callables_documented(self):
        undocumented: list[str] = []
        for module_name in PUBLIC_MODULES:
            module = importlib.import_module(module_name)
            exported = getattr(module, "__all__", None)
            if exported is None:
                continue
            for name in exported:
                obj = getattr(module, name)
                if not (inspect.isfunction(obj) or inspect.isclass(obj)):
                    continue
                if obj.__module__ != module_name:
                    continue  # re-export; documented at its home
                if not inspect.getdoc(obj):
                    undocumented.append(f"{module_name}.{name}")
        assert not undocumented, f"undocumented public items: {undocumented}"

    def test_public_methods_documented(self):
        """Every public method of the central classes has a docstring."""
        from repro import Instance, NestedTgd, Pattern, SchemaMapping, SOTgd, STTgd

        undocumented: list[str] = []
        for cls in (Instance, NestedTgd, STTgd, SOTgd, Pattern, SchemaMapping):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_") or not callable(member):
                    continue
                if not inspect.getdoc(member):
                    undocumented.append(f"{cls.__name__}.{name}")
        assert not undocumented, f"undocumented methods: {undocumented}"
