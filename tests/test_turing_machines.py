"""Tests for the extended stock machines and input-dependent reductions."""

from repro.engine.chase import chase_so_tgd
from repro.turing.encoding import run_source_instance
from repro.turing.machine import (
    bouncer_machine,
    run_machine,
    unary_doubler_machine,
    write_and_return_machine,
)
from repro.turing.reduction import build_reduction, enumeration_chain_length


class TestBouncerMachine:
    def test_never_halts(self):
        result = run_machine(bouncer_machine(2), "", max_steps=20)
        assert not result.halted

    def test_head_bounces(self):
        result = run_machine(bouncer_machine(2), "", max_steps=12)
        heads = [c.head for c in result.configurations]
        assert max(heads) == 2
        assert heads.count(0) >= 2  # returned to the origin at least twice

    def test_triangular_invariant_with_left_moves(self):
        result = run_machine(bouncer_machine(3), "", max_steps=15)
        for config in result.configurations:
            assert config.head <= config.time


class TestWriteAndReturn:
    def test_halts_after_round_trip(self):
        result = run_machine(write_and_return_machine(3), "", max_steps=20)
        assert result.halted
        assert result.steps == 6  # 3 right + 3 left
        assert result.final.head == 0

    def test_tape_written(self):
        result = run_machine(write_and_return_machine(2), "", max_steps=20)
        assert result.final.tape[:2] == ("1", "1")


class TestUnaryDoubler:
    def test_halt_time_depends_on_input(self):
        machine = unary_doubler_machine()
        for k in (0, 2, 4):
            result = run_machine(machine, "1" * k, max_steps=30)
            assert result.halted
            assert result.steps == k + 1


class TestReductionWithRicherMachines:
    def _chain_lengths(self, machine, input_word, lengths):
        reduction = build_reduction(machine)
        chains = []
        for n in lengths:
            source = run_source_instance(machine, input_word, max_steps=n, length=n)
            target = chase_so_tgd(source, reduction.so_tgd)
            chains.append(enumeration_chain_length(reduction, target))
        return chains

    def test_bouncer_enumeration_grows(self):
        """A looping machine with LEFT moves: the C3 arrival clauses carry
        the enumeration, and it still grows without bound."""
        chains = self._chain_lengths(bouncer_machine(2), "", [6, 9, 12])
        assert chains[0] < chains[1] < chains[2]

    def test_write_and_return_enumeration_plateaus(self):
        chains = self._chain_lengths(write_and_return_machine(2), "", [6, 9, 12])
        assert chains[0] == chains[1] == chains[2] > 0

    def test_input_word_shifts_the_plateau(self):
        """The unary scanner halts later on longer inputs, so the plateau
        value grows with the input word but not with the successor length."""
        machine = unary_doubler_machine()
        short = self._chain_lengths(machine, "1", [8, 10])
        long = self._chain_lengths(machine, "111", [8, 10])
        assert short[0] == short[1]
        assert long[0] == long[1]
        assert long[0] > short[0]
