"""Tests for the static analyzer (`repro.analysis`) and the fixpoint chase.

Covers the acceptance criteria of the analyzer: termination verdicts on the
paper's named dependency families (with depth bounds validated against the
actual Skolem-term nesting the fixpoint chase produces), positive and
negative cases for every lint code in the catalog, JSON serialization, the
`repro lint` CLI exit codes, and the chase-engine gating.
"""

import json

import pytest

from repro import perf
from repro.analysis.static import LINT_CATALOG, AnalysisReport, Finding, analyze
from repro.analysis.termination import (
    clear_termination_cache,
    format_position,
    position_graph,
    termination_report,
)
from repro.engine.fixpoint_chase import fixpoint_chase
from repro.errors import ChaseError, DependencyError
from repro.logic.atoms import Atom
from repro.logic.nested import NestedTgd, Part
from repro.logic.parser import (
    parse_egd,
    parse_instance,
    parse_nested_tgd,
    parse_so_tgd,
    parse_tgd,
)
from repro.logic.sotgd import SOClause, SOTgd
from repro.logic.terms import FuncTerm
from repro.logic.values import Constant, Variable


COPY = parse_tgd("S(x,y) -> R(x,y)")
INTRO = parse_nested_tgd("S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))")
SO_413 = parse_so_tgd("S(x,y) -> R(f(x), f(y))")
SIGMA_STAR = parse_nested_tgd(
    "S1(x1) -> exists y1 . ((S2(x2) -> R2(y1,x2)) & (S3(x1,x3) -> R3(y1,x3) "
    "& (S4(x3,x4) -> exists y2 . R4(y2,x4))))"
)
DIVERGING = parse_tgd("E(x,y) -> exists z . E(y,z)")


def term_depth(term: object) -> int:
    """Skolem-term nesting depth: 0 for constants, 1 + max(args) for terms."""
    if isinstance(term, FuncTerm):
        return 1 + max((term_depth(arg) for arg in term.args), default=0)
    return 0


def max_null_depth(instance) -> int:
    return max(
        (term_depth(arg) for fact in instance for arg in fact.args), default=0
    )


class TestTerminationVerdicts:
    def test_copy_is_weakly_acyclic_rank_zero(self):
        report = termination_report([COPY])
        assert report.weakly_acyclic
        assert report.max_rank == 0
        assert report.depth_bound == 0
        assert report.special_edge_count == 0

    def test_full_tgd_transitive_closure_rank_zero(self):
        # Cyclic position graph, but every edge is regular: still rank 0.
        tc = parse_tgd("E(x,y) & E(y,z) -> E(x,z)")
        report = termination_report([tc])
        assert report.weakly_acyclic
        assert report.depth_bound == 0

    def test_so_tgd_example_413(self):
        # Section 4.2: S(x,y) -> R(f(x), f(y)) is weakly acyclic, depth 1.
        report = termination_report([SO_413])
        assert report.weakly_acyclic
        assert report.depth_bound == 1
        assert report.special_edge_count > 0

    def test_intro_nested_tgd(self):
        report = termination_report([INTRO])
        assert report.weakly_acyclic
        assert report.depth_bound == 1

    def test_sigma_star(self):
        report = termination_report([SIGMA_STAR])
        assert report.weakly_acyclic
        assert report.depth_bound == 1

    def test_diverging_set_is_flagged(self):
        report = termination_report([DIVERGING])
        assert not report.weakly_acyclic
        assert report.max_rank is None
        assert report.depth_bound is None
        cycle = report.witness_cycle
        assert cycle is not None and len(cycle) >= 2
        assert all(position[0] == "E" for position in cycle)

    def test_two_stage_skolem_chain_has_depth_two(self):
        deps = [
            parse_tgd("S(x) -> exists y . T(x,y)"),
            parse_tgd("T(x,y) -> exists z . U(y,z)"),
        ]
        report = termination_report(deps)
        assert report.weakly_acyclic
        assert report.depth_bound == 2

    def test_egds_contribute_positions_but_no_edges(self):
        egd = parse_egd("P(x,y) & P(x,z) -> y = z")
        report = termination_report([COPY, egd])
        assert report.weakly_acyclic
        assert ("P", 0) in position_graph([COPY, egd]).nodes

    def test_single_dependency_is_accepted_bare(self):
        assert termination_report(COPY).weakly_acyclic

    def test_verdicts_are_memoized(self):
        clear_termination_cache()
        first = termination_report([INTRO])
        assert termination_report([INTRO]) is first
        clear_termination_cache()
        assert termination_report([INTRO]) is not first

    def test_non_dependency_is_rejected(self):
        with pytest.raises(DependencyError):
            termination_report(["not a dependency"])

    def test_format_position(self):
        assert format_position(("R", 2)) == "R.2"


class TestDepthBoundValidation:
    """`depth_bound` really bounds the Skolem nesting the chase produces."""

    @pytest.mark.parametrize(
        "deps,instance_text",
        [
            ([COPY], "S(a,b)"),
            ([parse_tgd("S(x,y) -> exists z . R(x,z)")], "S(a,b), S(b,c)"),
            ([INTRO], "S(a,b), S(a,c)"),
            ([SO_413], "S(a,b)"),
            (
                [
                    parse_tgd("S(x) -> exists y . T(x,y)"),
                    parse_tgd("T(x,y) -> exists z . U(y,z)"),
                ],
                "S(a), S(b)",
            ),
        ],
    )
    def test_chase_respects_depth_bound(self, deps, instance_text):
        report = termination_report(deps)
        result = fixpoint_chase(parse_instance(instance_text), deps)
        assert result.reached_fixpoint
        assert max_null_depth(result.instance) <= report.depth_bound

    def test_two_stage_chain_attains_the_bound(self):
        deps = [
            parse_tgd("S(x) -> exists y . T(x,y)"),
            parse_tgd("T(x,y) -> exists z . U(y,z)"),
        ]
        result = fixpoint_chase(parse_instance("S(a)"), deps)
        assert max_null_depth(result.instance) == 2
        assert termination_report(deps).depth_bound == 2


def finding_codes(*deps, egds=(), **kwargs):
    return [f.code for f in analyze(list(deps), list(egds), **kwargs).findings]


class TestLintCodes:
    def test_nt001_single_use_universal(self):
        assert finding_codes(parse_tgd("S(x,y) -> R(y,y)")) == ["NT001"]

    def test_nt001_negative_on_copy(self):
        assert finding_codes(COPY) == []

    def test_nt002_dead_existential(self):
        dep = parse_nested_tgd("S(x) -> exists y . R(x)")
        assert "NT002" in finding_codes(dep)

    def test_nt002_negative_when_used_in_head(self):
        dep = parse_nested_tgd("S(x) -> exists y . R(x,y)")
        assert "NT002" not in finding_codes(dep)

    def test_nt003_disconnected_body(self):
        dep = parse_tgd("S(x) & T(y) -> R(x,y)")
        assert "NT003" in finding_codes(dep)

    def test_nt003_negative_when_inherited_variable_connects(self):
        # The child body T(x2) alone is one component; inherited x1 anchors it.
        dep = parse_nested_tgd("S(x1) -> exists y . (T(x2) & U(x1,x2) -> R(y,x2))")
        assert "NT003" not in finding_codes(dep)

    def test_nt004_duplicate_body_atom(self):
        dep = parse_tgd("S(x,y) & S(x,y) -> R(x,y)")
        assert "NT004" in finding_codes(dep)

    def test_nt004_negative_on_distinct_atoms(self):
        dep = parse_tgd("S(x,y) & S(y,x) -> R(x,y)")
        assert "NT004" not in finding_codes(dep)

    def test_nt005_subsumed_body_atom_reported_once(self):
        dep = parse_tgd("S(x,y) & S(x,yp) -> R(x)")
        assert finding_codes(dep).count("NT005") == 1

    def test_nt005_negative_when_both_variables_matter(self):
        dep = parse_tgd("S(x,y) & S(x,z) -> R(y,z)")
        assert "NT005" not in finding_codes(dep)

    def test_nt006_empty_part(self):
        x = Variable("x")
        child = Part(universal_vars=(), body=(Atom("T", (x,)),), exist_vars=(), head=())
        root = Part(
            universal_vars=(x,),
            body=(Atom("S", (x,)),),
            exist_vars=(),
            head=(Atom("R", (x,)),),
            children=(child,),
        )
        assert "NT006" in finding_codes(NestedTgd(root=root))

    def test_nt007_child_repeats_parent_body(self):
        dep = parse_nested_tgd("S(x) -> exists y . (R(x,y) & (S(x) -> R(x,y)))")
        assert "NT007" in finding_codes(dep)

    def test_nt007_negative_on_genuinely_nested_trigger(self):
        assert "NT007" not in finding_codes(INTRO)

    def test_nt008_constant_in_head(self):
        x = Variable("x")
        clause = SOClause(
            body=(Atom("S", (x,)),),
            equalities=(),
            head=(Atom("R", (x, Constant("c"))),),
        )
        dep = SOTgd(functions=(), clauses=(clause,))
        assert "NT008" in finding_codes(dep)

    def test_nt009_inter_dependency_subsumption(self):
        stronger = parse_tgd("S(x,y) -> R(x,y) & T(y)")
        weaker = parse_tgd("S(a,b) -> T(b)")
        codes = finding_codes(stronger, weaker)
        assert "NT009" in codes
        assert "NT009" not in finding_codes(stronger, weaker, check_subsumption=False)

    def test_nt009_mutual_subsumption_reported_once(self):
        left = parse_tgd("S(x,y) -> R(x,y)")
        right = parse_tgd("S(a,b) -> R(a,b)")
        assert finding_codes(left, right).count("NT009") == 1

    def test_nt010_existential_used_only_in_descendants(self):
        dep = parse_nested_tgd("S1(x1) -> exists y . (S2(x2) -> R(x2, y))")
        codes = finding_codes(dep)
        assert "NT010" in codes
        assert "NT002" not in codes

    def test_td001_diverging_set(self):
        report = analyze([DIVERGING])
        assert [f.code for f in report.errors] == ["TD001"]
        assert not report.ok
        assert "cycle" in report.errors[0].message

    def test_td001_suppressed_without_termination_pass(self):
        report = analyze([DIVERGING], check_termination=False)
        assert report.termination is None
        assert report.ok

    def test_eg001_trivial_egd(self):
        assert "EG001" in finding_codes(egds=[parse_egd("S(x,y) -> x = x")])

    def test_eg002_disconnected_egd_body(self):
        assert "EG002" in finding_codes(egds=[parse_egd("S(x) & T(y) -> x = y")])

    def test_egd_negative_on_key_constraint(self):
        assert finding_codes(egds=[parse_egd("P(x,y) & P(x,z) -> y = z")]) == []

    def test_every_finding_code_is_in_the_catalog(self):
        report = analyze(
            [DIVERGING, parse_tgd("S(x,y) & S(x,y) -> R(y,y)")],
            [parse_egd("S(x,y) -> x = x")],
        )
        for finding in report.findings:
            severity, _ = LINT_CATALOG[finding.code]
            assert finding.severity == severity

    def test_findings_sort_errors_first(self):
        report = analyze([parse_tgd("S(x,y) -> R(y,y)"), DIVERGING])
        severities = [f.severity for f in report.findings]
        assert severities == sorted(severities, key=["error", "warning", "info"].index)


class TestReportSerialization:
    def test_json_roundtrip(self):
        report = analyze([DIVERGING, parse_tgd("S(x,y) -> R(y,y)")])
        decoded = json.loads(report.to_json())
        assert decoded == report.to_dict()
        assert decoded["ok"] is False
        assert decoded["termination"]["weakly_acyclic"] is False
        codes = [f["code"] for f in decoded["findings"]]
        assert "TD001" in codes and "NT001" in codes

    def test_finding_to_dict_fields(self):
        finding = Finding(
            code="NT001", severity="info", dependency="#1",
            location="part 2", message="m", hint="h",
        )
        assert finding.to_dict() == {
            "code": "NT001", "severity": "info", "dependency": "#1",
            "location": "part 2", "message": "m", "hint": "h",
            "fingerprint": finding.fingerprint,
        }
        # Content-hashed, not process-hashed: stable across runs/machines.
        assert len(finding.fingerprint) == 16
        assert int(finding.fingerprint, 16) >= 0

    def test_report_bool_mirrors_ok(self):
        assert bool(analyze([COPY]))
        assert not bool(analyze([DIVERGING]))

    def test_render_mentions_verdict_and_counts(self):
        text = analyze([COPY, DIVERGING]).render()
        assert "NOT weakly acyclic" in text
        assert "TD001" in text
        assert "error(s)" in text

    def test_render_weakly_acyclic_header(self):
        text = analyze([INTRO]).render()
        assert "weakly acyclic" in text
        assert "chase depth bound 1" in text

    def test_named_dependencies_use_their_names(self):
        dep = parse_tgd("S(x,y) -> R(y,y)", name="sigma_1")
        report = analyze([dep])
        assert report.findings[0].dependency == "sigma_1"


class TestLintCli:
    def test_lint_ok_exit_zero(self, capsys):
        from repro.cli import main

        assert main(["lint", "--dep", "S(x,y) -> R(x,y)"]) == 0
        out = capsys.readouterr().out
        assert "weakly acyclic" in out

    def test_lint_diverging_exit_one(self, capsys):
        from repro.cli import main

        assert main(["lint", "--dep", "E(x,y) -> exists z . E(y,z)"]) == 1
        out = capsys.readouterr().out
        assert "TD001" in out

    def test_lint_json_output(self, capsys):
        from repro.cli import main

        code = main([
            "lint", "--json",
            "--dep", "S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))",
            "--egd", "P(x,y) & P(x,z) -> y = z",
        ])
        assert code == 0
        decoded = json.loads(capsys.readouterr().out)
        assert decoded["ok"] is True
        assert decoded["termination"]["depth_bound"] == 1
        assert decoded["dependency_count"] == 2

    def test_lint_parse_error_exit_two(self, capsys):
        from repro.cli import main

        assert main(["lint", "--dep", "S(x y) -> R(x)"]) == 2
        assert "error:" in capsys.readouterr().err


class TestFixpointChase:
    def test_weakly_acyclic_runs_unbounded(self):
        tc = parse_tgd("E(x,y) & E(y,z) -> E(x,z)")
        result = fixpoint_chase(parse_instance("E(a,b), E(b,c), E(c,d)"), [tc])
        assert result.reached_fixpoint
        assert len(result.instance) == 6
        assert result.termination.weakly_acyclic

    def test_result_is_iterable_and_contains_input(self):
        source = parse_instance("S(a,b)")
        result = fixpoint_chase(source, [COPY])
        facts = set(result)
        assert set(source) <= facts
        assert any(fact.relation == "R" for fact in facts)

    def test_diverging_without_bound_refuses(self):
        with pytest.raises(ChaseError) as excinfo:
            fixpoint_chase(parse_instance("E(a,b)"), [DIVERGING])
        assert "TD001" in str(excinfo.value)
        assert "max_rounds" in str(excinfo.value)

    def test_diverging_with_bound_truncates(self):
        result = fixpoint_chase(
            parse_instance("E(a,b)"), [DIVERGING], max_rounds=3
        )
        assert not result.reached_fixpoint
        assert result.rounds == 3
        assert max_null_depth(result.instance) == 3  # each round nests one Skolem

    def test_round_counter_is_recorded(self):
        with perf.measuring() as stats:
            fixpoint_chase(parse_instance("E(a,b), E(b,c)"),
                           [parse_tgd("E(x,y) & E(y,z) -> E(x,z)")])
        assert stats.get("chase.fixpoint_rounds") >= 2

    def test_nested_tgd_input(self):
        result = fixpoint_chase(parse_instance("S(a,b), S(a,c)"), INTRO)
        relations = {fact.relation for fact in result}
        assert "R" in relations
        assert result.reached_fixpoint

    def test_so_tgd_input(self):
        result = fixpoint_chase(parse_instance("S(a,b)"), SO_413)
        r_facts = [fact for fact in result if fact.relation == "R"]
        assert len(r_facts) == 1
        assert max_null_depth(result.instance) == 1

    def test_non_dependency_is_rejected(self):
        # The termination pass runs first, so its DependencyError surfaces.
        with pytest.raises(DependencyError):
            fixpoint_chase(parse_instance("S(a)"), ["garbage"])
