"""Tests for the decidability-frontier analyzer (repro.analysis.frontier).

Covers the triangular-guardedness certificate, the complexity-tier
stratification with its per-relation degree witnesses, the stratified-MFA
rung it builds on, the new lint codes (TD005-TD007, CC003/CC004), the
``repro analyze`` CLI command, and the tier-aware engine gating.
"""

import json

import pytest

from repro.analysis.acyclicity import (
    TerminationClass,
    classify_termination,
    stratified_mfa,
)
from repro.analysis.frontier import (
    ComplexityTier,
    PTIME_DEGREE_LIMIT,
    clear_frontier_cache,
    describe_witnesses,
    frontier_report,
    tier_report,
    triangular_guard_report,
)
from repro.analysis.static import analyze
from repro.cli import main
from repro.engine import dispatch
from repro.engine.dispatch import choose_backend
from repro.engine.fixpoint_chase import _clauses_of, fixpoint_chase
from repro.errors import BudgetExceeded, ChaseError
from repro.logic.parser import parse_egd, parse_instance, parse_tgd
from repro.workloads.families import (
    ladder_instance,
    ladder_tgds,
    stratified_chain_instance,
    stratified_chain_tgds,
)

TRIANGULAR = "R(x,y) -> exists z . R(y,z) & R(z,x)"
DIVERGING = "E(x,y) -> exists z . E(y,z)"
JA_NOT_WA = "E(x,y) & E(y,x) -> exists z . E(y,z)"
SWA_SET = [
    "S(x) -> exists y, z . R(y,z) & R(z,y)",
    "R(u,u) -> exists w . S(w)",
]
MFA_SET = [
    "A(x) -> exists y . L(x,y)",
    "L(x,y) & B(y) -> exists w . A(w)",
]


def tgds(*texts):
    return [parse_tgd(text) for text in texts]


class TestTriangularGuardedness:
    def test_triangle_rule_is_guarded(self):
        report = triangular_guard_report(tgds(TRIANGULAR))
        assert report.guarded
        assert bool(report)
        assert report.witness is None
        assert report.clause_count == 1

    def test_guardedness_is_independent_of_termination(self):
        # The triangle rule diverges -- guardedness says nothing about that.
        verdict = classify_termination(tgds(TRIANGULAR))
        assert not verdict.guarantees_termination
        assert triangular_guard_report(tgds(TRIANGULAR)).guarded

    def test_unguarded_pair_named_in_witness(self):
        report = triangular_guard_report(
            tgds("E(x,y) & E(y,w) -> exists z . T(x,w,z)")
        )
        assert not report.guarded
        assert report.witness == ("d0.0", "w", "x")

    def test_single_frontier_variable_is_trivially_guarded(self):
        assert triangular_guard_report(tgds(DIVERGING)).guarded

    def test_egds_void_the_certificate(self):
        report = triangular_guard_report(
            tgds(TRIANGULAR) + [parse_egd("R(x,y) & R(x,z) -> y = z")]
        )
        assert not report.guarded
        assert report.witness is None
        assert "egd" in report.reason

    def test_skolem_argument_counts_as_frontier(self):
        # z's Skolem term depends on both x and w even though the head atom
        # shows only w; x/w share no body atom.
        report = triangular_guard_report(
            tgds("E(x,y) & E(y,w) -> exists z . T(w,z)")
        )
        assert not report.guarded
        assert report.witness == ("d0.0", "w", "x")

    def test_to_dict_round_trips_witness(self):
        report = triangular_guard_report(
            tgds("E(x,y) & E(y,w) -> exists z . T(x,w,z)")
        )
        data = report.to_dict()
        assert data["guarded"] is False
        assert data["witness"] == ["d0.0", "w", "x"]


class TestComplexityTiers:
    def test_tier_chain_is_ordered(self):
        chain = list(ComplexityTier)
        assert chain == sorted(chain, key=lambda tier: tier.rank)
        assert ComplexityTier.PTIME < ComplexityTier.EXPTIME
        assert ComplexityTier.EXPTIME < ComplexityTier.TWO_EXPTIME
        assert ComplexityTier.TWO_EXPTIME < ComplexityTier.NON_ELEMENTARY
        assert ComplexityTier.PTIME.polynomial
        assert not ComplexityTier.EXPTIME.polynomial

    def test_uncertified_is_non_elementary(self):
        report = tier_report(tgds(DIVERGING))
        assert report.tier is ComplexityTier.NON_ELEMENTARY
        assert not report.refined

    def test_ja_example_is_ptime_with_witnesses(self):
        report = tier_report(tgds(JA_NOT_WA))
        assert report.tier is ComplexityTier.PTIME
        assert report.basis is TerminationClass.JOINTLY_ACYCLIC
        assert report.refined
        assert dict(report.relation_degrees) == {"E": 3}

    def test_ladder_degrees_grow_like_fibonacci(self):
        report = tier_report(ladder_tgds(3))
        assert report.tier is ComplexityTier.PTIME
        assert dict(report.relation_degrees) == {
            "T0": 2, "T1": 3, "T2": 5, "T3": 8,
        }
        assert report.max_degree == PTIME_DEGREE_LIMIT

    def test_deeper_ladder_escapes_ptime(self):
        report = tier_report(ladder_tgds(4))
        assert report.tier is ComplexityTier.EXPTIME
        assert report.refined  # witnesses exist, they are just too big
        assert report.max_degree == 13

    def test_swa_is_exptime_without_witnesses(self):
        report = tier_report(tgds(*SWA_SET))
        assert report.tier is ComplexityTier.EXPTIME
        assert report.basis is TerminationClass.SUPER_WEAKLY_ACYCLIC
        assert not report.refined

    def test_mfa_is_two_exptime(self):
        report = tier_report(tgds(*MFA_SET))
        assert report.tier is ComplexityTier.TWO_EXPTIME
        assert report.basis is TerminationClass.MODEL_FAITHFUL

    def test_refined_fact_bound_beats_coarse_on_ladder(self):
        report = frontier_report(ladder_tgds(3))
        refined = report.tier.fact_bound(10)
        coarse = report.cost.fact_bound(10)
        assert refined is not None and coarse is not None
        assert refined < coarse
        assert report.fact_bound(10) == refined

    def test_chase_budget_derives_from_the_tier(self):
        from repro.analysis.cost import chase_budget, chase_cost

        deps = ladder_tgds(3)
        assert chase_budget(deps, 10) == frontier_report(deps).fact_bound(10)
        assert chase_budget(deps, 10) < chase_cost(deps).fact_bound(10)
        assert chase_budget(tgds(DIVERGING), 10) is None
        # without refined witnesses the coarse bound is all there is
        swa = tgds(*SWA_SET)
        assert chase_budget(swa, 10) == chase_cost(swa).fact_bound(10)

    def test_refined_bound_actually_bounds_the_chase(self):
        deps = ladder_tgds(3)
        for n in (2, 5, 9):
            instance = ladder_instance(n)
            domain = {value for fact in instance for value in fact.args}
            result = fixpoint_chase(instance, deps)
            bound = frontier_report(deps).tier.fact_bound(len(domain))
            assert len(result.instance) <= bound


class TestStratifiedMfa:
    def test_long_chain_defeats_monolithic_mfa_but_not_strata(self):
        deps = stratified_chain_tgds(40)
        verdict = classify_termination(deps)
        assert verdict.cls is TerminationClass.STRATIFIED_MFA
        assert verdict.guarantees_termination
        assert verdict.strata_count == 42
        assert not verdict.mfa_conclusive  # the monolithic budget ran out

    def test_certified_chain_runs_unbounded_to_fixpoint(self):
        deps = stratified_chain_tgds(40)
        result = fixpoint_chase(stratified_chain_instance(3), deps)
        assert result.reached_fixpoint
        assert result.termination_class is TerminationClass.STRATIFIED_MFA

    def test_diverging_stratum_is_named(self):
        deps = (
            tgds("P(x) -> S0(x)")
            + [parse_tgd(f"S{i}(x) -> exists y . S{i + 1}(y)") for i in range(40)]
            + tgds(
                "S40(x) -> exists y . Bad(x,y)",
                "Bad(x,y) -> exists z . Bad(y,z)",
            )
        )
        verdict = classify_termination(deps)
        assert verdict.cls is TerminationClass.NOT_GUARANTEED
        assert verdict.strata_witness == ("#43",)
        with pytest.raises(ChaseError, match="TD001"):
            fixpoint_chase(parse_instance("P(a)"), deps)

    def test_single_scc_yields_no_stratification(self):
        assert stratified_mfa(tgds(DIVERGING)) is None

    def test_stratified_rung_ranks_above_mfa(self):
        assert (
            TerminationClass.MODEL_FAITHFUL.rank
            < TerminationClass.STRATIFIED_MFA.rank
            < TerminationClass.NOT_GUARANTEED.rank
        )


class TestFrontierLintCodes:
    def codes(self, deps):
        return [finding.code for finding in analyze(deps).findings]

    def test_td005_on_guarded_uncertified_set(self):
        codes = self.codes(tgds(TRIANGULAR))
        assert "TD001" in codes and "TD005" in codes

    def test_no_td005_when_certified(self):
        assert "TD005" not in self.codes(tgds(JA_NOT_WA))

    def test_td006_on_certified_above_ptime(self):
        assert "TD006" in self.codes(tgds(*MFA_SET))
        assert "TD006" not in self.codes(tgds(JA_NOT_WA))

    def test_td007_on_stratified_rung(self):
        codes = self.codes(stratified_chain_tgds(40))
        assert "TD007" in codes
        assert "TD001" not in codes

    def test_cc003_demotes_cc002_on_ladder(self):
        codes = self.codes(ladder_tgds(3))
        assert "CC003" in codes
        assert "CC002" not in codes

    def test_cc002_survives_when_witnesses_refuse(self):
        codes = self.codes(ladder_tgds(4))
        # coarse exponential AND the refined degree 13 is still too big
        assert "CC002" in codes
        assert "CC003" not in codes

    def test_cc004_on_small_coarse_degree_without_ptime_witnesses(self):
        assert "CC004" in self.codes(tgds(*SWA_SET))

    def test_report_carries_the_frontier(self):
        report = analyze(ladder_tgds(3))
        assert report.frontier is not None
        assert report.frontier.tier.tier is ComplexityTier.PTIME
        assert "complexity tier" in report.render()
        assert report.to_dict()["frontier"]["tier"]["tier"] == "ptime"


class TestAnalyzeCli:
    def test_certified_set_exits_zero_with_json(self, capsys):
        code = main(["analyze", "--dep", JA_NOT_WA])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["certified"] is True
        assert payload["tier"]["tier"] == "ptime"
        assert payload["tier"]["relation_degrees"] == {"E": 3}

    def test_uncertified_set_exits_one(self, capsys):
        code = main(["analyze", "--dep", DIVERGING])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["certified"] is False
        assert payload["tier"]["tier"] == "non-elementary"

    def test_guarded_diverging_set_reports_decidable_reasoning(self, capsys):
        code = main(["analyze", "--dep", TRIANGULAR])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["decidable_reasoning"] is True
        assert payload["triangular"]["guarded"] is True

    def test_witness_mode_prints_degrees(self, capsys):
        code = main(["analyze", "--dep", JA_NOT_WA, "--witnesses"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tier: ptime" in out
        assert "relation degrees: E: n^3" in out

    def test_output_is_deterministic(self, capsys):
        main(["analyze", "--dep", JA_NOT_WA])
        first = capsys.readouterr().out
        clear_frontier_cache()
        main(["analyze", "--dep", JA_NOT_WA])
        assert capsys.readouterr().out == first


class TestTierAwareDispatch:
    def ladder_clauses(self):
        return _clauses_of(ladder_tgds(3))

    def test_ptime_tier_lowers_the_sql_threshold(self):
        clauses = self.ladder_clauses()
        between = (dispatch.SQL_AUTO_THRESHOLD_PTIME + dispatch.SQL_AUTO_THRESHOLD) // 2
        with_tier = choose_backend(
            "auto", input_size=between, clauses=clauses, certified=True,
            tier=ComplexityTier.PTIME,
        )
        without_tier = choose_backend(
            "auto", input_size=between, clauses=clauses, certified=True,
        )
        assert with_tier.backend == "sql"
        assert "PTIME-tier" in with_tier.reason
        assert without_tier.backend == "columnar"

    def test_non_ptime_tier_keeps_the_default_threshold(self):
        choice = choose_backend(
            "auto", input_size=2_000, clauses=self.ladder_clauses(),
            certified=True, tier=ComplexityTier.TWO_EXPTIME,
        )
        assert choice.backend == "columnar"
        assert choice.forced_budget is None

    def test_non_elementary_tier_forces_a_budget(self):
        choice = choose_backend(
            "auto", input_size=10, clauses=self.ladder_clauses(),
            certified=False, tier=ComplexityTier.NON_ELEMENTARY,
        )
        assert choice.forced_budget == dispatch.NON_ELEMENTARY_AUTO_BUDGET

    def test_explicit_backend_threads_the_tier_through(self):
        choice = choose_backend(
            "tuple", input_size=10, clauses=self.ladder_clauses(),
            certified=True, tier=ComplexityTier.PTIME,
        )
        assert choice.backend == "tuple"
        assert choice.tier is ComplexityTier.PTIME
        assert choice.forced_budget is None

    def test_auto_chase_records_tier_and_picks_sql(self):
        result = fixpoint_chase(
            ladder_instance(1_500), ladder_tgds(3), backend="auto"
        )
        assert result.backend == "sql"
        assert result.tier is ComplexityTier.PTIME

    def test_non_auto_chase_skips_tier_computation(self):
        result = fixpoint_chase(ladder_instance(5), ladder_tgds(3))
        assert result.backend == "tuple"
        assert result.tier is None

    def test_forced_budget_trips_on_auto_bounded_divergence(self, monkeypatch):
        monkeypatch.setattr(dispatch, "NON_ELEMENTARY_AUTO_BUDGET", 6)
        with pytest.raises(BudgetExceeded):
            fixpoint_chase(
                parse_instance("E(a,b)"), tgds(DIVERGING),
                backend="auto", max_rounds=10,
            )

    def test_explicit_budget_overrides_the_forced_one(self, monkeypatch):
        monkeypatch.setattr(dispatch, "NON_ELEMENTARY_AUTO_BUDGET", 6)
        result = fixpoint_chase(
            parse_instance("E(a,b)"), tgds(DIVERGING),
            backend="auto", max_rounds=3, budget=100,
        )
        assert not result.reached_fixpoint
        assert result.tier is ComplexityTier.NON_ELEMENTARY


class TestFrontierReportPlumbing:
    def test_report_is_memoized(self):
        clear_frontier_cache()
        deps = ladder_tgds(2)
        assert frontier_report(deps) is frontier_report(deps)
        clear_frontier_cache()
        assert frontier_report(deps) is not None

    def test_json_is_deterministic_and_sorted(self):
        report = frontier_report(tgds(JA_NOT_WA))
        payload = report.to_json()
        assert payload == frontier_report(tgds(JA_NOT_WA)).to_json()
        assert json.loads(payload)["tier"]["relation_degrees"] == {"E": 3}

    def test_describe_witnesses_names_everything(self):
        lines = describe_witnesses(frontier_report(tgds(DIVERGING)))
        text = "\n".join(lines)
        assert "weak-acyclicity cycle" in text
        assert "MFA cyclic term" in text

    def test_decidable_reasoning_disjunction(self):
        assert frontier_report(tgds(JA_NOT_WA)).decidable_reasoning
        assert frontier_report(tgds(TRIANGULAR)).decidable_reasoning
        unguarded_diverging = tgds(
            "E(x,y) & E(y,w) -> exists z . T(x,w,z)", DIVERGING
        )
        assert not frontier_report(unguarded_diverging).decidable_reasoning
