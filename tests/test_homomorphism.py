"""Tests for homomorphism search between target instances."""

from repro.engine.homomorphism import (
    find_homomorphism,
    has_homomorphism,
    homomorphically_equivalent,
    is_homomorphism,
)
from repro.logic.parser import parse_instance
from repro.logic.values import Constant, Null


class TestBasics:
    def test_null_to_constant(self):
        assert has_homomorphism(parse_instance("R(a,_x)"), parse_instance("R(a,b)"))

    def test_constant_fixed(self):
        assert not has_homomorphism(parse_instance("R(a,b)"), parse_instance("R(a,c)"))

    def test_ground_facts_must_occur(self):
        assert has_homomorphism(parse_instance("R(a,b)"), parse_instance("R(a,b), R(b,c)"))
        assert not has_homomorphism(parse_instance("R(a,b)"), parse_instance("R(b,a)"))

    def test_empty_source_always_maps(self):
        assert find_homomorphism(parse_instance(""), parse_instance("R(a,b)")) == {}

    def test_into_empty_target_fails(self):
        assert not has_homomorphism(parse_instance("R(_x,_y)"), parse_instance(""))


class TestConsistency:
    def test_shared_null_must_map_consistently(self):
        source = parse_instance("R(a,_x), T(_x,b)")
        good = parse_instance("R(a,c), T(c,b)")
        bad = parse_instance("R(a,c), T(d,b)")
        assert has_homomorphism(source, good)
        assert not has_homomorphism(source, bad)

    def test_returned_mapping_is_a_homomorphism(self):
        source = parse_instance("R(a,_x), R(_x,_y)")
        target = parse_instance("R(a,b), R(b,c), R(c,a)")
        mapping = find_homomorphism(source, target)
        assert mapping is not None
        assert is_homomorphism(mapping, source, target)

    def test_nulls_can_merge(self):
        source = parse_instance("R(_x,b), R(_y,b)")
        target = parse_instance("R(c,b)")
        mapping = find_homomorphism(source, target)
        assert mapping is not None
        assert mapping[Null("x")] == mapping[Null("y")] == Constant("c")


class TestGraphShapes:
    def test_path_into_cycle(self):
        path = parse_instance("R(_a,_b), R(_b,_c)")
        cycle = parse_instance("R(_u,_v), R(_v,_u)")
        assert has_homomorphism(path, cycle)

    def test_odd_cycle_not_into_shorter_odd_cycle_undirected(self):
        """Undirected C5 does not map into undirected C3's complement... rather:
        the undirected 5-cycle has no homomorphism into an undirected edge,
        but maps into the undirected triangle."""
        c5 = parse_instance(
            "R(_1,_2), R(_2,_1), R(_2,_3), R(_3,_2), R(_3,_4), R(_4,_3), "
            "R(_4,_5), R(_5,_4), R(_5,_1), R(_1,_5)"
        )
        edge = parse_instance("R(_u,_v), R(_v,_u)")
        triangle = parse_instance(
            "R(_a,_b), R(_b,_a), R(_b,_c), R(_c,_b), R(_c,_a), R(_a,_c)"
        )
        assert not has_homomorphism(c5, edge)  # C5 is not 2-colorable
        assert has_homomorphism(c5, triangle)  # C5 is 3-colorable

    def test_fixed_binding_respected(self):
        source = parse_instance("R(_x,_y)")
        target = parse_instance("R(a,b), R(b,c)")
        mapping = find_homomorphism(source, target, fixed={Null("x"): Constant("b")})
        assert mapping is not None
        assert mapping[Null("y")] == Constant("c")

    def test_fixed_binding_can_make_it_fail(self):
        source = parse_instance("R(_x,_y)")
        target = parse_instance("R(a,b)")
        assert find_homomorphism(source, target, fixed={Null("x"): Constant("b")}) is None


class TestEquivalence:
    def test_hom_equivalent_instances(self):
        left = parse_instance("R(a,_x)")
        right = parse_instance("R(a,_y), R(a,_z)")
        assert homomorphically_equivalent(left, right)

    def test_not_equivalent(self):
        left = parse_instance("R(a,b)")
        right = parse_instance("R(a,_x)")
        assert has_homomorphism(right, left)
        assert not has_homomorphism(left, right)
        assert not homomorphically_equivalent(left, right)
