"""Tests for conjunctive-query matching."""

from repro.engine.matching import find_matches, has_match
from repro.logic.parser import parse_atom, parse_instance
from repro.logic.values import Constant, Variable


X, Y, Z = Variable("x"), Variable("y"), Variable("z")
A, B, C = Constant("a"), Constant("b"), Constant("c")


def atoms(*texts):
    return [parse_atom(t) for t in texts]


class TestSingleAtom:
    def test_all_matches(self):
        inst = parse_instance("S(a,b), S(b,c)")
        matches = list(find_matches(atoms("S(x,y)"), inst))
        assert len(matches) == 2
        assert {m[X] for m in matches} == {A, B}

    def test_repeated_variable(self):
        inst = parse_instance("S(a,a), S(a,b)")
        matches = list(find_matches(atoms("S(x,x)"), inst))
        assert len(matches) == 1
        assert matches[0][X] == A

    def test_no_match(self):
        assert not has_match(atoms("T(x)"), parse_instance("S(a,b)"))


class TestJoins:
    def test_chain_join(self):
        inst = parse_instance("S(a,b), S(b,c), S(c,a)")
        matches = list(find_matches(atoms("S(x,y)", "S(y,z)"), inst))
        assert len(matches) == 3

    def test_join_binds_consistently(self):
        inst = parse_instance("S(a,b), T(b,c), T(a,c)")
        matches = list(find_matches(atoms("S(x,y)", "T(y,z)"), inst))
        assert len(matches) == 1
        assert matches[0] == {X: A, Y: B, Z: C}

    def test_cross_product_when_disconnected(self):
        inst = parse_instance("S(a,b), Q(c)")
        matches = list(find_matches(atoms("S(x,y)", "Q(z)"), inst))
        assert len(matches) == 1

    def test_triangle_query(self):
        inst = parse_instance("E(a,b), E(b,c), E(c,a), E(a,c)")
        matches = list(find_matches(atoms("E(x,y)", "E(y,z)", "E(z,x)"), inst))
        # both orientations of the triangle through a,b,c? only a->b->c->a closes
        assert {tuple(sorted(repr(v) for v in m.values())) for m in matches} == {
            ("a", "b", "c")
        }


class TestPartialAssignments:
    def test_partial_restricts_matches(self):
        inst = parse_instance("S(a,b), S(b,c)")
        matches = list(find_matches(atoms("S(x,y)"), inst, partial={X: B}))
        assert len(matches) == 1
        assert matches[0][Y] == C

    def test_partial_preserved_in_result(self):
        inst = parse_instance("S(a,b), Q(c)")
        matches = list(find_matches(atoms("Q(z)"), inst, partial={X: A}))
        assert matches[0][X] == A and matches[0][Z] == C

    def test_unsatisfiable_partial(self):
        inst = parse_instance("S(a,b)")
        assert list(find_matches(atoms("S(x,y)"), inst, partial={X: C})) == []


class TestDeterminism:
    def test_same_matches_both_runs(self):
        inst = parse_instance("S(a,b), S(b,c), S(c,a)")
        first = list(find_matches(atoms("S(x,y)", "S(y,z)"), inst))
        second = list(find_matches(atoms("S(x,y)", "S(y,z)"), inst))
        assert first == second
