"""Tests for SARIF output, baselines, determinism, and the lint CLI surface."""

import json

import pytest

from repro.analysis.sarif import SARIF_SCHEMA, sarif_json, sarif_report
from repro.analysis.static import (
    LINT_CATALOG,
    analyze,
    apply_baseline,
    baseline_fingerprints,
)
from repro.cli import main, parse_dependency
from repro.errors import ParseError
from repro.logic.parser import parse_nested_tgd, parse_tgd

DIVERGING = parse_tgd("E(x,y) -> exists z . E(y,z)")
SIGMA_STAR_TEXT = (
    "S1(x1) -> exists y1 . ((S2(x2) -> R2(y1,x2)) & (S3(x1,x3) -> R3(y1,x3) "
    "& (S4(x3,x4) -> exists y2 . R4(y2,x4))))"
)


class TestSarifStructure:
    def test_log_skeleton(self):
        log = sarif_report(analyze([DIVERGING]))
        assert log["$schema"] == SARIF_SCHEMA
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert run["columnKind"] == "unicodeCodePoints"

    def test_all_catalog_codes_become_rules(self):
        (run,) = sarif_report(analyze([DIVERGING]))["runs"]
        rules = run["tool"]["driver"]["rules"]
        assert [rule["id"] for rule in rules] == sorted(LINT_CATALOG)
        for rule in rules:
            assert rule["defaultConfiguration"]["level"] in {"error", "warning", "note"}

    def test_results_reference_rules_by_index(self):
        (run,) = sarif_report(analyze([DIVERGING]))["runs"]
        rules = run["tool"]["driver"]["rules"]
        assert run["results"], "diverging set must produce findings"
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
            assert result["partialFingerprints"]["reproLint/v1"]
            location = result["locations"][0]["logicalLocations"][0]
            assert location["kind"] == "declaration"

    def test_info_severity_maps_to_note(self):
        # a JA-certified set gets the info-severity TD002 finding
        report = analyze([parse_tgd("E(x,y) & E(y,x) -> exists z . E(y,z)")])
        (run,) = sarif_report(report)["runs"]
        td002 = [r for r in run["results"] if r["ruleId"] == "TD002"]
        assert td002 and td002[0]["level"] == "note"

    def test_properties_carry_verdicts(self):
        (run,) = sarif_report(analyze([DIVERGING]))["runs"]
        assert run["properties"]["dependencyCount"] == 1
        assert run["properties"]["termination"]["weakly_acyclic"] is False
        assert "hierarchy" in run["properties"]
        assert "cost" in run["properties"]


class TestDeterminism:
    def test_sarif_byte_identical_across_runs(self):
        deps_a = [parse_dependency(SIGMA_STAR_TEXT), DIVERGING]
        first = sarif_json(analyze(deps_a))
        deps_b = [parse_dependency(SIGMA_STAR_TEXT), parse_tgd("E(x,y) -> exists z . E(y,z)")]
        second = sarif_json(analyze(deps_b))
        assert first == second

    def test_json_report_byte_identical_across_runs(self):
        first = analyze([DIVERGING]).to_json()
        second = analyze([parse_tgd("E(x,y) -> exists z . E(y,z)")]).to_json()
        assert first == second

    def test_finding_order_is_total(self):
        severities = {"error": 0, "warning": 1, "info": 2}
        report = analyze([DIVERGING, parse_tgd("S(x,y) -> R(y,y)")])
        keys = [
            (severities[f.severity], f.code, f.dependency, f.location, f.message)
            for f in report.findings
        ]
        assert keys == sorted(keys)

    def test_fingerprint_stability(self):
        report = analyze([DIVERGING])
        again = analyze([parse_tgd("E(x,y) -> exists z . E(y,z)")])
        assert [f.fingerprint for f in report.findings] == [
            f.fingerprint for f in again.findings
        ]
        for finding in report.findings:
            assert len(finding.fingerprint) == 16
            int(finding.fingerprint, 16)


class TestBaseline:
    def test_round_trip_suppresses_everything(self):
        report = analyze([DIVERGING])
        assert report.findings
        suppressed = apply_baseline(report, baseline_fingerprints(report))
        assert not suppressed.findings
        assert suppressed.ok

    def test_partial_baseline_keeps_new_findings(self):
        report = analyze([DIVERGING])
        keep, *rest = report.findings
        suppressed = apply_baseline(report, [f.fingerprint for f in rest])
        assert [f.fingerprint for f in suppressed.findings] == [keep.fingerprint]

    def test_baseline_fingerprints_sorted_unique(self):
        fingerprints = baseline_fingerprints(analyze([DIVERGING, DIVERGING]))
        assert fingerprints == sorted(set(fingerprints))


class TestLintCli:
    def test_sarif_flag(self, capsys):
        code = main(["lint", "--sarif", "--dep", "S(x,y) -> R(x,y)"])
        assert code == 0
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"

    def test_sarif_excludes_json_flag(self, capsys):
        with pytest.raises(SystemExit):
            main(["lint", "--sarif", "--json", "--dep", "S(x,y) -> R(x,y)"])

    def test_sigma_star_gets_cc001_quickly(self, capsys):
        # acceptance criterion: the non-elementary sweep is *predicted*, not run
        import time

        started = time.monotonic()
        code = main(["lint", "--sarif", "--dep", SIGMA_STAR_TEXT])
        elapsed = time.monotonic() - started
        assert elapsed < 5.0
        log = json.loads(capsys.readouterr().out)
        (run,) = log["runs"]
        cc001 = [r for r in run["results"] if r["ruleId"] == "CC001"]
        assert cc001, "sigma* must get the non-elementary sweep warning"
        assert code == 0  # warnings alone do not fail the lint verdict

    def test_write_then_apply_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        dep = "E(x,y) -> exists z . E(y,z)"
        code = main(["lint", "--write-baseline", str(baseline), "--dep", dep])
        assert code == 0
        payload = json.loads(baseline.read_text())
        assert payload["fingerprints"]
        capsys.readouterr()
        code = main(["lint", "--baseline", str(baseline), "--dep", dep])
        assert code == 0
        out = capsys.readouterr().out
        assert "TD001" not in out

    def test_cli_output_deterministic(self, capsys):
        main(["lint", "--sarif", "--dep", SIGMA_STAR_TEXT])
        first = capsys.readouterr().out
        main(["lint", "--sarif", "--dep", SIGMA_STAR_TEXT])
        assert capsys.readouterr().out == first


class TestMalformedInput:
    MALFORMED = (
        "S1(x1) -> exists y1 . ((S2(x2) -> R2(y1,x2)) & (S3(x1,x3) -> R3(y1,x3)))"
        ")"  # stray trailing paren deep in the text
    )

    def test_parse_dependency_reports_furthest_error(self):
        with pytest.raises(ParseError) as excinfo:
            parse_dependency(self.MALFORMED)
        # the nested parser got all the way to the stray paren; the SO-tgd
        # parser's early bail-out must not mask it
        assert excinfo.value.position is not None
        assert excinfo.value.position > 50

    def test_lint_cli_exits_nonzero_with_location(self, capsys):
        code = main(["lint", "--dep", self.MALFORMED])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "line 1" in err and "column" in err

    def test_ok_input_unaffected(self, capsys):
        code = main(["lint", "--dep", "S(x,y) -> R(x,y)"])
        assert code == 0
