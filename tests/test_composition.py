"""Tests for GLAV mapping composition (the motivation for SO tgds, [8])."""

import pytest

from repro.engine.chase import chase, chase_so_tgd
from repro.engine.homomorphism import homomorphically_equivalent
from repro.errors import DependencyError
from repro.logic.parser import parse_instance, parse_nested_tgd, parse_tgd
from repro.mappings.composition import compose, compose_chase


class TestAlgorithm:
    def test_simple_relay(self):
        """Copy then project: the composition is a single plain clause."""
        first = [parse_tgd("S(x, y) -> M(x, y)")]
        second = [parse_tgd("M(x, y) -> T(x)")]
        composed = compose(first, second)
        assert len(composed.clauses) == 1
        clause = composed.clauses[0]
        assert clause.body[0].relation == "S"
        assert clause.head[0].relation == "T"
        assert not clause.equalities

    def test_fkpt_student_example(self):
        """The classic Takes/Student/Enrolled composition of [8]: the result
        needs a Skolem function for the student id and an equality joining
        the two Takes atoms."""
        first = [
            parse_tgd("Takes(n, co) -> Takes1(n, co)"),
            parse_tgd("Takes(n, co) -> exists s . Student(n, s)"),
        ]
        second = [parse_tgd("Student(n, s) & Takes1(n, co) -> Enrolled(s, co)")]
        composed = compose(first, second)
        assert len(composed.clauses) == 1
        clause = composed.clauses[0]
        assert len(clause.body) == 2  # two Takes atoms
        assert len(clause.equalities) == 1  # n joined across the two atoms
        assert len(composed.functions) == 1

    def test_multiple_resolutions_multiply_clauses(self):
        """Two ways to derive M give two clauses."""
        first = [
            parse_tgd("S(x, y) -> M(x, y)"),
            parse_tgd("P(x, y) -> M(x, y)"),
        ]
        second = [parse_tgd("M(x, y) -> T(x, y)")]
        composed = compose(first, second)
        assert len(composed.clauses) == 2

    def test_nested_terms_appear(self):
        """Existentials in both mappings create nested Skolem terms -- the
        reason composition leaves the plain fragment."""
        first = [parse_tgd("S(x) -> exists y . M(x, y)")]
        second = [parse_tgd("M(x, y) -> exists z . T(y, z)")]
        composed = compose(first, second)
        assert not composed.is_plain()

    def test_unresolvable_second_mapping_rejected(self):
        first = [parse_tgd("S(x) -> M(x)")]
        second = [parse_tgd("Other(x) -> T(x)")]
        with pytest.raises(DependencyError):
            compose(first, second)

    def test_non_glav_rejected(self):
        nested = parse_nested_tgd("S(x) -> (P(y) -> M(x, y))")
        with pytest.raises(DependencyError):
            compose([nested], [parse_tgd("M(x, y) -> T(x)")])

    def test_flat_nested_tgds_accepted(self):
        first = [parse_nested_tgd("S(x, y) -> M(x, y)")]
        second = [parse_nested_tgd("M(x, y) -> T(x)")]
        assert len(compose(first, second).clauses) == 1


class TestSemantics:
    """chase(I, compose(A, B)) must be hom-equivalent to the two-step chase."""

    CASES = [
        (
            [parse_tgd("S(x, y) -> M(x, y)")],
            [parse_tgd("M(x, y) -> T(y, x)")],
            ["S(a,b)", "S(a,b), S(b,c)"],
        ),
        (
            [
                parse_tgd("Takes(n, co) -> Takes1(n, co)"),
                parse_tgd("Takes(n, co) -> exists s . Student(n, s)"),
            ],
            [parse_tgd("Student(n, s) & Takes1(n, co) -> Enrolled(s, co)")],
            ["Takes(alice, db)", "Takes(alice, db), Takes(alice, os), Takes(bob, db)"],
        ),
        (
            [parse_tgd("S(x) -> exists y . M(x, y)")],
            [parse_tgd("M(x, y) -> exists z . T(y, z)")],
            ["S(a)", "S(a), S(b)"],
        ),
    ]

    @pytest.mark.parametrize("first,second,sources", CASES)
    def test_chase_agreement(self, first, second, sources):
        composed = compose(first, second)
        for text in sources:
            source = parse_instance(text)
            one_step = chase_so_tgd(source, composed)
            two_step = compose_chase(source, first, second)
            assert homomorphically_equivalent(one_step, two_step)

    def test_composition_respects_satisfaction(self):
        """A target satisfying the composition must admit an intermediate
        witness on this concrete case."""
        first = [parse_tgd("S(x, y) -> M(x, y)")]
        second = [parse_tgd("M(x, y) -> T(x, y)")]
        composed = compose(first, second)
        from repro.engine.model_check import satisfies_so

        source = parse_instance("S(a, b)")
        good_target = parse_instance("T(a, b)")
        bad_target = parse_instance("T(b, a)")
        assert satisfies_so(source, good_target, composed)
        assert not satisfies_so(source, bad_target, composed)
        # and indeed the two-step semantics agrees: the canonical
        # intermediate instance chases onto the good target only
        middle = chase(source, first)
        from repro.engine.homomorphism import has_homomorphism

        assert has_homomorphism(chase(middle, second), good_target)
        assert not has_homomorphism(chase(middle, second), bad_target)
