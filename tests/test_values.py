"""Tests for constants, nulls, variables, and the fresh-value factory."""

from repro.logic.values import (
    Constant,
    FreshValueFactory,
    Null,
    Variable,
    is_null,
    is_value,
)
from repro.logic.terms import FuncTerm


class TestValueKinds:
    def test_constant_equality_by_name(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")

    def test_null_and_constant_never_equal(self):
        assert Null("a") != Constant("a")

    def test_variable_is_not_a_value(self):
        assert not is_value(Variable("x"))

    def test_constant_is_a_value_but_not_a_null(self):
        assert is_value(Constant("a"))
        assert not is_null(Constant("a"))

    def test_null_is_a_value_and_a_null(self):
        assert is_value(Null("n"))
        assert is_null(Null("n"))

    def test_ground_functerm_acts_as_null(self):
        term = FuncTerm("f", (Constant("a"),))
        assert is_value(term)
        assert is_null(term)

    def test_non_ground_functerm_is_not_a_value(self):
        term = FuncTerm("f", (Variable("x"),))
        assert not is_value(term)

    def test_values_are_hashable_and_usable_in_sets(self):
        values = {Constant("a"), Null("a"), FuncTerm("f", (Constant("a"),))}
        assert len(values) == 3

    def test_reprs_are_distinctive(self):
        assert repr(Constant("a")) == "a"
        assert repr(Null("n1")) == "_n1"
        assert repr(Variable("x")) == "?x"


class TestFreshValueFactory:
    def test_constants_are_pairwise_distinct(self):
        factory = FreshValueFactory()
        constants = [factory.constant() for __ in range(10)]
        assert len(set(constants)) == 10

    def test_nulls_are_pairwise_distinct(self):
        factory = FreshValueFactory()
        nulls = [factory.null() for __ in range(10)]
        assert len(set(nulls)) == 10

    def test_prefix_is_respected(self):
        factory = FreshValueFactory(constant_prefix="b")
        assert factory.constant() == Constant("b1")

    def test_factories_are_deterministic(self):
        left = FreshValueFactory()
        right = FreshValueFactory()
        assert [left.constant() for __ in range(3)] == [right.constant() for __ in range(3)]
