"""Tests for the dependency/instance parser and its error reporting."""

import pytest

from repro.errors import ParseError
from repro.logic.parser import (
    parse_atom,
    parse_egd,
    parse_instance,
    parse_nested_tgd,
    parse_so_tgd,
    parse_tgd,
)
from repro.logic.values import Constant, Null, Variable


class TestAtoms:
    def test_simple_atom(self):
        atom = parse_atom("S(x, y)")
        assert atom.relation == "S"
        assert atom.args == (Variable("x"), Variable("y"))

    def test_nullary_atom(self):
        assert parse_atom("Marker()").args == ()

    def test_lowercase_relation_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("s(x)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("S(x) extra")


class TestTgds:
    def test_explicit_exists(self):
        tgd = parse_tgd("S(x) -> exists z . R(x, z)")
        assert tgd.existential_variables == (Variable("z"),)

    def test_implicit_exists(self):
        tgd = parse_tgd("S(x) -> R(x, z)")
        assert tgd.existential_variables == (Variable("z"),)

    def test_forall_prefix_accepted(self):
        tgd = parse_tgd("forall x, y . S(x,y) -> R(x)")
        assert tgd.universal_variables == (Variable("x"), Variable("y"))

    def test_missing_arrow_rejected(self):
        with pytest.raises(ParseError):
            parse_tgd("S(x) R(x)")


class TestNestedTgds:
    def test_single_nested_part(self):
        tgd = parse_nested_tgd("S1(x1) -> (S2(x2) -> R(x1, x2))")
        assert tgd.part_count == 2

    def test_universal_variables_assigned_to_innermost_binding_part(self):
        tgd = parse_nested_tgd("S1(x1) -> (S2(x1, x2) -> R(x2))")
        # x1 is bound at the root; the child part binds only x2
        assert tgd.part(1).universal_vars == (Variable("x1"),)
        assert tgd.part(2).universal_vars == (Variable("x2"),)

    def test_grouping_parens_without_arrow(self):
        tgd = parse_nested_tgd("S(x) -> (R(x) & T(x))")
        assert tgd.part_count == 1
        assert len(tgd.part(1).head) == 2

    def test_mixed_atoms_and_nested_parts(self, sigma_star):
        assert sigma_star.part(3).head[0].relation == "R3"
        assert sigma_star.children_of(3) == (4,)

    def test_inferred_existential_in_nested_part(self):
        tgd = parse_nested_tgd("S(x) -> (T(z) -> R(z, w))")
        assert tgd.part(2).exist_vars == (Variable("w"),)

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ParseError):
            parse_nested_tgd("S(x) -> (T(y) -> R(x, y)")


class TestSOTgds:
    def test_multi_clause(self):
        so = parse_so_tgd("S(x) -> R(f(x)) ; T(y) -> R(g(y))")
        assert len(so.clauses) == 2

    def test_equalities_parsed(self):
        so = parse_so_tgd("Emp(e) & e = f(e) -> SelfMgr(e)")
        assert len(so.clauses[0].equalities) == 1

    def test_nested_terms_parsed(self):
        so = parse_so_tgd("S(x) -> R(f(g(x)))")
        assert not so.is_plain()

    def test_binary_function(self):
        so = parse_so_tgd("S(x,y) -> R(f(x, y))")
        assert so.function_arity("f") == 2


class TestEgdsAndInstances:
    def test_egd(self):
        egd = parse_egd("S(x,y) & S(x,z) -> y = z")
        assert egd.left == Variable("y")

    def test_instance_constants_and_nulls(self):
        inst = parse_instance("R(a, _n1), S(b, c)")
        assert Constant("a") in inst.constants()
        assert Null("n1") in inst.nulls()

    def test_empty_instance(self):
        assert len(parse_instance("")) == 0

    def test_instance_bad_relation_rejected(self):
        with pytest.raises(ParseError):
            parse_instance("s(a)")


class TestErrorPositions:
    def test_parse_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            parse_atom("S(x,")
        assert info.value.position is not None

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_atom("S(x%)")


class TestErrorLocations:
    """Parse errors carry line, column, and the offending token."""

    def test_atom_reports_offending_token(self):
        with pytest.raises(ParseError) as info:
            parse_atom("S(x y)")
        error = info.value
        assert (error.line, error.column, error.position) == (1, 5, 4)
        assert error.token == "y"
        assert "line 1, column 5" in str(error)

    def test_nested_tgd_truncated_input(self):
        with pytest.raises(ParseError) as info:
            parse_nested_tgd("S(x,y) -> exists z .")
        error = info.value
        assert "unexpected end of input" in str(error)
        assert error.token is None
        assert error.position == len("S(x,y) -> exists z .")

    def test_nested_tgd_bad_character_token(self):
        with pytest.raises(ParseError) as info:
            parse_nested_tgd("S(x,y) -> R(x % y)")
        error = info.value
        assert error.token == "%"
        assert error.column == 15

    def test_nested_tgd_bad_existential_name(self):
        with pytest.raises(ParseError) as info:
            parse_nested_tgd("S(x,y) -> exists 3 . R(x,z)")
        assert info.value.token == "3"

    def test_nested_tgd_unclosed_parenthesis(self):
        text = "S(x1) -> exists y . (R(y,x1) & (S(x2) -> R(y,x2))"
        with pytest.raises(ParseError) as info:
            parse_nested_tgd(text)
        assert info.value.position == len(text)

    def test_multiline_input_reports_line_and_column(self):
        text = "S(x1,x2) ->\n  exists y .\n  (R(y,x2) & & (S(x1,x3) -> R(y,x3)))"
        with pytest.raises(ParseError) as info:
            parse_nested_tgd(text)
        error = info.value
        assert (error.line, error.column) == (3, 14)
        assert error.token == "&"
        assert "line 3, column 14" in str(error)

    def test_missing_arrow_names_the_token_found(self):
        with pytest.raises(ParseError) as info:
            parse_tgd("S(x,y) R(x,y)")
        error = info.value
        assert error.token == "R"
        assert "expected '->'" in str(error)
