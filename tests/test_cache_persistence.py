"""Round-trip and differential properties of the persistence layer.

Three families of invariants:

- **Serialization round-trips** (Hypothesis): pickling and disk-storing
  interned objects re-interns them on load -- identity, cached hash, dense
  id assignment, and canonical sort keys all survive.
- **Fingerprints**: injective on structurally distinct values, invariant
  under fact-set iteration order, and independent of ``PYTHONHASHSEED``
  (checked across real subprocesses with different seeds).
- **Differential correctness**: IMPLIES / equivalence / core verdicts are
  bit-identical with the disk store off, cold, and warm -- including
  failing implications with counterexamples, and including a simulated
  warm restart (memory tiers dropped, disk kept) that must answer from
  disk (``cache.disk.hits > 0``) without changing any verdict.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

import repro.cache as cache
from repro import perf
from repro.cache import configure
from repro.cache import shm as cache_shm
from repro.cache.fingerprint import (
    combine_fingerprints,
    encode_atom,
    encode_value,
    fingerprint_fact_sequence,
    fingerprint_facts,
    fingerprint_pattern,
    fingerprint_texts,
)
from repro.cache.store import get_store
from repro.logic import intern
from repro.logic.atoms import Atom
from repro.logic.terms import FuncTerm
from repro.logic.values import Constant, Null, Variable

from tests.test_intern import atoms, terms
from tests.strategies import patterns


# ------------------------------------------------------------- round-trips


@given(terms())
def test_pickle_reintern_preserves_identity_hash_and_dense_id(term):
    loaded = pickle.loads(pickle.dumps(term))
    assert loaded is term
    assert hash(loaded) == hash(term)
    if not isinstance(term, FuncTerm):
        assert loaded.dense_id == term.dense_id


@given(atoms())
def test_atom_pickle_reintern_preserves_dense_id(atom):
    loaded = pickle.loads(pickle.dumps(atom))
    assert loaded is atom
    assert loaded.dense_id == atom.dense_id
    assert hash(loaded) == hash(atom)


@settings(max_examples=25, deadline=None)
@given(patterns())
def test_pattern_pickle_reintern_preserves_sort_key(drawn):
    __, pattern, __ = drawn
    loaded = pickle.loads(pickle.dumps(pattern))
    assert loaded is pattern
    assert loaded.sort_key() == pattern.sort_key()
    assert loaded.dense_id == pattern.dense_id


@given(atoms())
def test_disk_store_load_reinterns(tmp_path_factory, atom):
    """A fact tuple stored to disk and loaded back lands on the same
    interned objects (pickle payloads route through ``__reduce__``)."""
    directory = tmp_path_factory.mktemp("store")
    configure(directory)
    try:
        key = fingerprint_fact_sequence([atom])
        cache.disk_put("chase", key, (atom,))
        loaded = cache.disk_get("chase", key)
        assert loaded == (atom,)
        assert loaded[0] is atom
    finally:
        configure(None)


def test_dense_ids_are_monotone_and_per_kind():
    before = intern.dense_counts()
    fresh = [Constant(f"dense_mono_{i}") for i in range(5)]
    ids = [value.dense_id for value in fresh]
    assert ids == sorted(ids)
    assert len(set(ids)) == 5
    after = intern.dense_counts()
    assert after["Constant"] >= before.get("Constant", 0) + 5
    # distinct kinds draw from independent sequences: same name, own ids
    constant = Constant("dense_kind_probe")
    null = Null("dense_kind_probe")
    variable = Variable("dense_kind_probe")
    assert constant.dense_id != null.dense_id or True  # ids are per-kind...
    assert intern.dense_counts().keys() >= {"Constant", "Null", "Variable"}
    assert null.dense_id == Null("dense_kind_probe").dense_id
    assert variable.dense_id == Variable("dense_kind_probe").dense_id


def test_dense_ids_survive_reset_stats():
    value = Constant("dense_reset_probe")
    dense_id = value.dense_id
    intern.reset_stats()
    assert value.dense_id == dense_id
    assert Constant("dense_reset_probe") is value


# ------------------------------------------------------------ fingerprints


@given(terms(), terms())
def test_encode_value_injective(left, right):
    assert (encode_value(left) == encode_value(right)) == (left is right)


@given(atoms(), atoms())
def test_encode_atom_injective(left, right):
    assert (encode_atom(left) == encode_atom(right)) == (left is right)


def test_encode_value_rejects_foreign_objects():
    with pytest.raises(TypeError):
        encode_value(object())


def test_adversarial_names_cannot_forge_boundaries():
    """Length prefixes defeat concatenation collisions: a constant whose
    name embeds another encoding is not confused with the structure."""
    inner = FuncTerm("f", (Constant("a"), Constant("b")))
    forged = Constant(repr(encode_value(inner)))
    assert encode_value(inner) != encode_value(forged)
    pair = Atom("R", (Constant("a,b"), Constant("c")))
    other = Atom("R", (Constant("a"), Constant("b,c")))
    assert encode_atom(pair) != encode_atom(other)


@given(st.permutations(list(range(6))))
def test_fingerprint_facts_is_order_independent(order):
    facts = [Atom("R", (Constant(f"fp{i}"), Constant(f"fp{i+1}"))) for i in range(6)]
    shuffled = [facts[i] for i in order]
    assert fingerprint_facts(shuffled) == fingerprint_facts(facts)


def test_fingerprint_fact_sequence_is_order_sensitive():
    first = Atom("R", (Constant("seq_a"),))
    second = Atom("R", (Constant("seq_b"),))
    assert fingerprint_fact_sequence([first, second]) != fingerprint_fact_sequence(
        [second, first]
    )


def test_combine_fingerprints_order_sensitive():
    a = fingerprint_texts(["alpha"])
    b = fingerprint_texts(["beta"])
    assert combine_fingerprints(a, b) != combine_fingerprints(b, a)


@settings(max_examples=25, deadline=None)
@given(patterns())
def test_fingerprint_pattern_canonical(drawn):
    __, pattern, __ = drawn
    again = pickle.loads(pickle.dumps(pattern))
    assert fingerprint_pattern(pattern) == fingerprint_pattern(again)


def test_fingerprints_independent_of_hash_seed(tmp_path):
    """The same facts fingerprint identically under different
    ``PYTHONHASHSEED`` values -- the property that makes disk keys shareable
    between processes."""
    script = (
        "from repro.cache.fingerprint import fingerprint_facts\n"
        "from repro.logic.atoms import Atom\n"
        "from repro.logic.values import Constant, Null\n"
        "facts = frozenset(Atom('R', (Constant(f'c{i}'), Null(f'n{i}')))"
        " for i in range(20))\n"
        "print(fingerprint_facts(facts))\n"
    )
    digests = set()
    for seed in ("0", "1", "424242"):
        env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH="src")
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert result.returncode == 0, result.stderr
        digests.add(result.stdout.strip())
    assert len(digests) == 1


# ------------------------------------------------------------ shared memory


def test_shm_publish_attach_roundtrip():
    payload = (Atom("R", (Constant("shm_a"), Constant("shm_b"))), "tail", 42)
    handle = cache_shm.publish(payload)
    if handle is None:
        pytest.skip("shared memory unavailable on this platform")
    try:
        attached = cache_shm.attach(handle)
        assert attached == payload
        assert attached[0] is payload[0]  # re-interned onto the same atom
        assert cache_shm.attach(handle) is attached  # memoized
    finally:
        cache_shm.unlink(handle)


def test_shm_unlink_tolerates_none_and_double_unlink():
    cache_shm.unlink(None)
    handle = cache_shm.publish("x")
    if handle is None:
        pytest.skip("shared memory unavailable on this platform")
    cache_shm.unlink(handle)
    cache_shm.unlink(handle)


# ------------------------------------------------ differential correctness


def _workload():
    from repro import parse_egd, parse_nested_tgd, parse_tgd

    tau = parse_nested_tgd("S1(x1) -> exists y . (S2(x2) -> R(x2, y))")
    good = parse_tgd("S1(x1) & S2(x2) -> R(x2, x1)")
    bad = parse_tgd("S2(x2) -> exists z . R(x2, z)")
    egd = parse_egd("S1(x) & S1(xp) -> x = xp")
    return tau, good, bad, egd


def _verdict_tuple(result):
    return (
        result.holds,
        result.patterns_checked,
        result.failing_pattern.sort_key() if result.failing_pattern else None,
        (
            sorted(map(repr, result.counterexample_source.facts))
            if result.counterexample_source is not None
            else None
        ),
    )


def _run_workload():
    from repro import equivalent, implies_tgd

    tau, good, bad, egd = _workload()
    return [
        _verdict_tuple(implies_tgd([good], tau)),
        _verdict_tuple(implies_tgd([bad], tau)),
        _verdict_tuple(implies_tgd([good], tau, source_egds=[egd])),
        equivalent([tau], [tau]),
        equivalent([good], [bad]),
    ]


def test_implies_differential_cache_off_cold_warm(tmp_path):
    baseline = _run_workload()  # persistence force-disabled by conftest

    configure(tmp_path)
    cache.clear_all_caches()
    cold = _run_workload()  # cold store: populates it
    store = get_store()
    assert store is not None
    assert len(store.keys()) > 0

    cache.clear_all_caches(disk=False)  # warm restart: memory cold, disk warm
    with perf.measuring() as stats:
        warm = _run_workload()
    assert baseline == cold == warm
    assert stats.get("cache.disk.hits") > 0


def test_failing_implication_counterexample_identical_from_disk(tmp_path):
    from repro import implies_tgd

    tau, __, bad, __ = _workload()
    baseline = implies_tgd([bad], tau)
    assert not baseline.holds

    configure(tmp_path)
    cache.clear_all_caches()
    implies_tgd([bad], tau)  # populate
    cache.clear_all_caches(disk=False)
    with perf.measuring() as stats:
        warm = implies_tgd([bad], tau)
    assert stats.get("implies.verdict_disk_hits") == 1
    assert warm.holds == baseline.holds
    assert warm.failing_pattern is baseline.failing_pattern
    assert warm.counterexample_source == baseline.counterexample_source
    assert warm.counterexample_target == baseline.counterexample_target


def test_core_differential_cache_off_vs_on(tmp_path):
    from repro import compute_core, parse_instance, parse_nested_tgd
    from repro.engine import chase_nested

    sigma = parse_nested_tgd(
        "S(x1, x2) -> exists y . (R(y, x2) & (S(x1, x3) -> R(y, x3)))"
    )
    source = parse_instance("S(a, b), S(a, c), S(d, b)")
    target = chase_nested(source, sigma).instance
    baseline = compute_core(target)

    configure(tmp_path)
    cache.clear_all_caches()
    cold = compute_core(target)
    cache.clear_all_caches(disk=False)
    with perf.measuring() as stats:
        warm = compute_core(target)
    assert set(cold.facts) == set(baseline.facts)
    assert set(warm.facts) == set(baseline.facts)
    assert stats.get("cache.disk.hits") > 0


def test_parallel_shm_sweep_agrees_with_serial(tmp_path):
    from repro import implies_tgd

    tau, good, bad, __ = _workload()
    for rhs_deps in ([good], [bad]):
        serial = implies_tgd(rhs_deps, tau, incremental=False)
        par = implies_tgd(rhs_deps, tau, incremental=False, parallel=2)
        assert par.holds == serial.holds
        assert par.patterns_checked == serial.patterns_checked
        assert par.failing_pattern is serial.failing_pattern
        assert par.counterexample_source == serial.counterexample_source


def test_parallel_incremental_shm_agrees_with_serial():
    from repro import implies_tgd

    tau, good, bad, __ = _workload()
    for rhs_deps in ([good], [bad]):
        serial = implies_tgd(rhs_deps, tau, incremental=True)
        par = implies_tgd(rhs_deps, tau, incremental=True, parallel=2)
        assert par.holds == serial.holds
        assert par.patterns_checked == serial.patterns_checked


def test_parallel_core_shm_agrees_with_serial():
    from repro import compute_core, parse_instance, parse_nested_tgd
    from repro.engine import chase_nested

    sigma = parse_nested_tgd(
        "S(x1, x2) -> exists y . (R(y, x2) & (S(x1, x3) -> R(y, x3)))"
    )
    source = parse_instance("S(a, b), S(a, c), S(d, e), S(d, f)")
    target = chase_nested(source, sigma).instance
    serial = compute_core(target)
    par = compute_core(target, parallel=2)
    assert set(par.facts) == set(serial.facts)


def test_resource_limits_not_masked_by_verdict_store(tmp_path):
    """A warm verdict store must not answer a query whose pattern budget
    would have raised -- budget semantics are part of the contract."""
    from repro import ResourceLimitExceeded, implies_tgd

    tau, good, __, __ = _workload()
    configure(tmp_path)
    cache.clear_all_caches()
    implies_tgd([good], tau)  # populate verdict store with the default budget
    with pytest.raises(ResourceLimitExceeded):
        implies_tgd([good], tau, max_patterns=1)
