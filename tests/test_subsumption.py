"""Tests for the syntactic subsumption pre-pass (`repro.analysis.subsumption`).

The contract is *soundness*: ``subsumes(sigma, tau)`` returning True must
guarantee ``sigma |= tau``.  The differential tests enforce it two ways --
every True answer is confirmed by the full IMPLIES procedure, and IMPLIES
with the pre-pass enabled (the default) returns verdicts identical to the
pre-pass-free run across the corpus.
"""

import pytest

from repro import perf
from repro.analysis.subsumption import alpha_equivalent, subsumes, trivially_implied
from repro.core.implication import clear_chase_cache, implies_tgd
from repro.logic.parser import parse_nested_tgd, parse_so_tgd, parse_tgd


INTRO = parse_nested_tgd("S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))")
INTRO_RENAMED = parse_nested_tgd(
    "S(u1,u2) -> exists w . (R(w,u2) & (S(u1,u3) -> R(w,u3)))"
)
SIGMA_STAR = parse_nested_tgd(
    "S1(x1) -> exists y1 . ((S2(x2) -> R2(y1,x2)) & (S3(x1,x3) -> R3(y1,x3) "
    "& (S4(x3,x4) -> exists y2 . R4(y2,x4))))"
)


class TestAlphaEquivalence:
    def test_renamed_nested_copies(self):
        assert alpha_equivalent(INTRO, INTRO_RENAMED)

    def test_renamed_flat_copies(self):
        left = parse_tgd("S(x,y) -> exists z . R(x,z)")
        right = parse_tgd("S(a,b) -> exists c . R(a,c)")
        assert alpha_equivalent(left, right)

    def test_different_structure_is_not_equivalent(self):
        other = parse_nested_tgd("S(x1,x2) -> exists y . R(y,x2)")
        assert not alpha_equivalent(INTRO, other)

    def test_flat_vs_nested_same_root_shape(self):
        flat = parse_tgd("S(x,y) -> R(x,y)")
        nested = parse_nested_tgd("S(x,y) -> R(x,y)")
        assert alpha_equivalent(flat, nested)

    def test_argument_order_matters(self):
        left = parse_tgd("S(x,y) -> R(x,y)")
        right = parse_tgd("S(x,y) -> R(y,x)")
        assert not alpha_equivalent(left, right)

    def test_same_schema_tgds_supported(self):
        # NestedTgd validation rejects shared source/target relations, so the
        # canonicalization must not route s-t tgds through it.
        left = parse_tgd("E(x,y) -> exists z . E(y,z)")
        right = parse_tgd("E(u,v) -> exists w . E(v,w)")
        assert alpha_equivalent(left, right)


class TestFlatSubsumption:
    def test_drop_head_atom_is_weakening(self):
        sigma = parse_tgd("S(x,y) -> R(x,y) & T(y)")
        tau = parse_tgd("S(x,y) -> T(y)")
        assert subsumes(sigma, tau)

    def test_existential_weakening(self):
        sigma = parse_tgd("S(x,y) -> R(x,y)")
        tau = parse_tgd("S(x,y) -> exists z . R(x,z)")
        assert subsumes(sigma, tau)
        assert not subsumes(tau, sigma)  # existential does not give a concrete value

    def test_extra_body_atom_is_weakening(self):
        sigma = parse_tgd("S(x,y) -> R(x,y)")
        tau = parse_tgd("S(x,y) & T(y) -> R(x,y)")
        assert subsumes(sigma, tau)
        assert not subsumes(tau, sigma)

    def test_body_specialization_is_weakening(self):
        sigma = parse_tgd("S(x,y) -> R(x)")
        tau = parse_tgd("S(x,x) -> R(x)")
        assert subsumes(sigma, tau)
        assert not subsumes(tau, sigma)

    def test_different_relations_do_not_subsume(self):
        assert not subsumes(parse_tgd("S(x) -> R(x)"), parse_tgd("S(x) -> T(x)"))

    def test_nested_flat_projection(self):
        # The part-2 projection of INTRO is S(x1,x2) & S(x1,x3) -> E y . R(y,x3).
        tau = parse_tgd("S(x1,x2) & S(x1,x3) -> exists y . R(y,x3)")
        assert subsumes(INTRO, tau)

    def test_nested_rhs_requires_alpha(self):
        # A non-flat right-hand side is only recognized up to renaming.
        assert subsumes(SIGMA_STAR, SIGMA_STAR)
        weaker = parse_nested_tgd(
            "S1(x1) & S0(x0) -> exists y1 . ((S2(x2) -> R2(y1,x2)) "
            "& (S3(x1,x3) -> R3(y1,x3) & (S4(x3,x4) -> exists y2 . R4(y2,x4))))"
        )
        assert not subsumes(SIGMA_STAR, weaker)

    def test_non_tgds_return_false(self):
        so = parse_so_tgd("S(x,y) -> R(f(x), f(y))")
        assert not subsumes(so, parse_tgd("S(x,y) -> exists z . R(z,z)"))
        assert not subsumes(parse_tgd("S(x) -> R(x)"), so)

    def test_trivially_implied_scans_the_set(self):
        sigma_set = [parse_tgd("T(x) -> U(x)"), INTRO]
        assert trivially_implied(sigma_set, INTRO_RENAMED)
        assert not trivially_implied([parse_tgd("T(x) -> U(x)")], INTRO_RENAMED)


# A corpus of (sigma_set, tau) queries covering holds/fails, flat/nested, and
# the pairs exercised by the parallel-sweep differential tests.
CORPUS = [
    ([parse_tgd("S2(x2) -> exists z . R(x2, z)")],
     parse_nested_tgd("S1(x1) -> exists y . (S2(x2) -> R(x2, y))")),
    ([parse_tgd("S1(x1) & S2(x2) -> R(x2, x1)")],
     parse_nested_tgd("S1(x1) -> exists y . (S2(x2) -> R(x2, y))")),
    ([parse_tgd("S(x,y) -> exists z . R(x,z)")],
     parse_nested_tgd("S(x,y) -> R(x,y)")),
    ([INTRO], INTRO_RENAMED),
    ([INTRO], parse_tgd("S(x1,x2) & S(x1,x3) -> exists y . R(y,x3)")),
    ([parse_tgd("S(x,y) -> R(x,y) & T(y)")], parse_tgd("S(x,y) -> T(y)")),
    ([parse_tgd("S(x,y) -> R(x,y)")], parse_tgd("S(x,y) & T(y) -> R(x,y)")),
    ([parse_tgd("S(x,y) -> R(y,x)")], parse_tgd("S(x,y) -> R(x,y)")),
]


class TestDifferential:
    @pytest.mark.parametrize("sigma_set,tau", CORPUS)
    def test_prepass_preserves_verdicts(self, sigma_set, tau):
        clear_chase_cache()
        with_prepass = implies_tgd(sigma_set, tau, (), 200_000)
        clear_chase_cache()
        without = implies_tgd(sigma_set, tau, (), 200_000, subsumption=False)
        assert with_prepass.holds == without.holds
        assert with_prepass.k == without.k

    @pytest.mark.parametrize("sigma_set,tau", CORPUS)
    def test_subsumption_is_sound(self, sigma_set, tau):
        if trivially_implied(sigma_set, tau):
            clear_chase_cache()
            assert implies_tgd(sigma_set, tau, (), 200_000, subsumption=False).holds

    def test_skips_are_counted(self):
        clear_chase_cache()
        with perf.measuring() as stats:
            result = implies_tgd([INTRO], INTRO_RENAMED)
        assert result.holds
        assert result.patterns_checked == 0
        assert stats.get("implies.subsumption_checks") == 1
        assert stats.get("implies.subsumption_skips") == 1

    def test_miss_falls_through_to_the_sweep(self):
        clear_chase_cache()
        with perf.measuring() as stats:
            result = implies_tgd(
                [parse_tgd("S1(x1) & S2(x2) -> R(x2, x1)")],
                parse_nested_tgd("S1(x1) -> exists y . (S2(x2) -> R(x2, y))"),
            )
        assert result.holds
        assert result.patterns_checked > 0
        assert stats.get("implies.subsumption_checks") == 1
        assert stats.get("implies.subsumption_skips") == 0

    def test_nonelementary_query_answered_by_prepass(self):
        renamed = parse_nested_tgd(
            "S1(u1) -> exists w1 . ((S2(u2) -> R2(w1,u2)) & (S3(u1,u3) -> "
            "R3(w1,u3) & (S4(u3,u4) -> exists w2 . R4(w2,u4))))"
        )
        result = implies_tgd([SIGMA_STAR], renamed, (), 200_000)
        assert result.holds
        assert result.patterns_checked == 0
