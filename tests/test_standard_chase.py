"""Tests for the standard chase and core chase variants."""

from repro.engine.chase import chase_st_tgds
from repro.engine.core_instance import core
from repro.engine.homomorphism import homomorphically_equivalent
from repro.engine.model_check import satisfies
from repro.engine.standard_chase import core_chase, standard_chase
from repro.logic.parser import parse_instance, parse_tgd


class TestStandardChase:
    def test_avoids_redundant_triggers(self):
        tgd = parse_tgd("S(x,y) -> R(x,z)")
        source = parse_instance("S(a,b), S(a,c)")
        oblivious = chase_st_tgds(source, [tgd])
        standard = standard_chase(source, [tgd])
        assert len(oblivious) == 2  # one null per match
        assert len(standard) == 1  # the second trigger is already satisfied

    def test_still_a_solution(self):
        tgds = [
            parse_tgd("S(x,y) -> R(x,z) & T(z,y)"),
            parse_tgd("S(x,y) -> R(x,w)"),
        ]
        source = parse_instance("S(a,b), S(b,c)")
        result = standard_chase(source, tgds)
        assert satisfies(source, result, tgds)

    def test_still_universal(self):
        tgd = parse_tgd("S(x,y) -> R(x,z)")
        source = parse_instance("S(a,b), S(a,c), S(b,c)")
        standard = standard_chase(source, [tgd])
        oblivious = chase_st_tgds(source, [tgd])
        assert homomorphically_equivalent(standard, oblivious)

    def test_ground_heads_fire_once(self):
        tgd = parse_tgd("S(x,y) -> P(x)")
        source = parse_instance("S(a,b), S(a,c)")
        assert standard_chase(source, [tgd]) == parse_instance("P(a)")

    def test_empty_source(self):
        assert len(standard_chase(parse_instance(""), [parse_tgd("S(x) -> R(x)")])) == 0


class TestCoreChase:
    def test_produces_the_core(self):
        tgd = parse_tgd("S(x,y) -> R(x,z)")
        source = parse_instance("S(a,b), S(a,c)")
        result = core_chase(source, [tgd])
        assert result.isomorphic(core(chase_st_tgds(source, [tgd])))

    def test_smallest_universal_solution(self):
        tgds = [
            parse_tgd("S(x,y) -> R(x,z)"),
            parse_tgd("S(x,y) -> R(x,y)"),
        ]
        source = parse_instance("S(a,b)")
        result = core_chase(source, tgds)
        # R(a,b) satisfies both dependencies; the null folds away
        assert result == parse_instance("R(a,b)")

    def test_agrees_with_oblivious_core(self):
        tgds = [parse_tgd("S(x,y) -> R(x,z) & T(z)"), parse_tgd("S(x,y) -> R(y,w)")]
        for text in ["S(a,b)", "S(a,b), S(b,a)", "S(a,a)"]:
            source = parse_instance(text)
            left = core_chase(source, tgds)
            right = core(chase_st_tgds(source, tgds))
            assert homomorphically_equivalent(left, right)
            assert len(left) == len(right)  # cores are unique up to iso
