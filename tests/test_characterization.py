"""Tests for the [17]-style structural characterization verifiers."""

from repro.analysis.characterization import (
    check_closed_under_union,
    check_n_modular,
    glav_modularity_bound,
)
from repro.engine.chase import chase
from repro.logic.parser import parse_instance, parse_tgd


class TestUnionClosure:
    def test_glav_mapping_closed_under_union(self):
        tgd = parse_tgd("S(x,y) -> R(x,y)")
        pairs = [
            (parse_instance("S(a,b)"), parse_instance("R(a,b)")),
            (parse_instance("S(b,c)"), parse_instance("R(b,c)")),
            (parse_instance("S(a,c)"), parse_instance("R(a,c), R(c,c)")),
        ]
        assert check_closed_under_union([tgd], pairs)

    def test_nested_mapping_fails_union_closure(self, intro_nested):
        """The shared existential breaks union closure: each source alone has
        a one-null solution, but their union demands a single y serving both
        x3 values, which the union of the individual solutions lacks."""
        left_source = parse_instance("S(a,b)")
        right_source = parse_instance("S(a,c)")
        left_solution = parse_instance("R(b,b)")
        right_solution = parse_instance("R(c,c)")
        report = check_closed_under_union(
            [intro_nested],
            [(left_source, left_solution), (right_source, right_solution)],
        )
        assert not report.holds
        assert report.counterexample is not None

    def test_chase_pairs_always_union_closed_for_glav(self):
        tgd = parse_tgd("S(x,y) -> R(x,z)")
        sources = [parse_instance("S(a,b)"), parse_instance("S(b,c)")]
        pairs = [(s, chase(s, [tgd])) for s in sources]
        assert check_closed_under_union([tgd], pairs)


class TestModularity:
    def test_glav_is_modular_at_body_size(self):
        tgd = parse_tgd("S(x,y) & S(y,z) -> R(x,z)")
        bound = glav_modularity_bound([tgd])
        assert bound == 2
        pairs = [
            (parse_instance("S(a,b), S(b,c)"), parse_instance("")),
            (parse_instance("S(a,b), S(b,c), S(c,d)"), parse_instance("R(a,c)")),
        ]
        assert check_n_modular([tgd], pairs, n=bound)

    def test_nested_tgd_defeats_small_modularity(self, intro_nested):
        """A 3-fact source whose violation needs all three facts together:
        every 2-fact sub-source is satisfied by the same target."""
        source = parse_instance("S(a,b), S(a,c), S(a,d)")
        # target where no single y covers b, c, d simultaneously, but any
        # pair is covered (y=u covers b,c; y=v covers c,d; y=w covers b,d)
        target = parse_instance(
            "R(u,b), R(u,c), R(v,c), R(v,d), R(w,b), R(w,d)"
        )
        report = check_n_modular([intro_nested], [(source, target)], n=2)
        assert not report.modular
        assert report.counterexample is not None
        # but modularity at n = 3 finds the witness (the full source)
        assert check_n_modular([intro_nested], [(source, target)], n=3)

    def test_solutions_are_ignored(self):
        tgd = parse_tgd("S(x,y) -> R(x,y)")
        pairs = [(parse_instance("S(a,b)"), parse_instance("R(a,b)"))]
        report = check_n_modular([tgd], pairs, n=1)
        assert report.modular and report.checked == 0
