"""Tests for the static cost model (repro.analysis.cost) and budget gates."""

import time

import pytest
from hypothesis import given, settings

from repro.analysis.acyclicity import (
    TerminationClass,
    classify_termination,
    clear_acyclicity_cache,
)
from repro.analysis.cost import (
    CC001_PATTERN_LIMIT,
    SATURATION_CAP,
    chase_cost,
    count_k_patterns_saturating,
    saturating_add,
    saturating_mul,
    saturating_pow,
    sweep_cost,
)
from repro.core.implication import clear_chase_cache, implies_tgd
from repro.core.patterns import count_k_patterns
from repro.engine.fixpoint_chase import fixpoint_chase
from repro.errors import BudgetExceeded, DependencyError
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.parser import parse_nested_tgd, parse_tgd
from repro.logic.values import Constant

from tests.strategies import same_schema_tgds

SIGMA_STAR = parse_nested_tgd(
    "S1(x1) -> exists y1 . ((S2(x2) -> R2(y1,x2)) & (S3(x1,x3) -> R3(y1,x3) "
    "& (S4(x3,x4) -> exists y2 . R4(y2,x4))))"
)
SIGMA_STAR_RENAMED = parse_nested_tgd(
    "S1(u1) -> exists w1 . ((S2(u2) -> R2(w1,u2)) & (S3(u1,u3) -> R3(w1,u3) "
    "& (S4(u3,u4) -> exists w2 . R4(w2,u4))))"
)
COPY = parse_tgd("S(x,y) -> R(x,y)")
DIVERGING = parse_tgd("E(x,y) -> exists z . E(y,z)")


class TestSaturatingArithmetic:
    def test_add_clamps(self):
        assert saturating_add(1, 2) == 3
        assert saturating_add(SATURATION_CAP, 1) == SATURATION_CAP

    def test_mul_clamps_without_materializing(self):
        assert saturating_mul(6, 7) == 42
        assert saturating_mul(10**10, 10**10) == SATURATION_CAP
        assert saturating_mul(SATURATION_CAP, 0) == 0

    def test_pow_clamps(self):
        assert saturating_pow(2, 10) == 1024
        assert saturating_pow(10, 1) == 10
        assert saturating_pow(2, 10**9) == SATURATION_CAP
        assert saturating_pow(7, 0) == 1
        assert saturating_pow(1, 10**9) == 1

    def test_pow_agrees_with_exact_below_cap(self):
        for base in (2, 3, 10):
            for exp in range(0, 12):
                assert saturating_pow(base, exp) == base**exp


class TestChaseCost:
    def test_copy_is_linear_in_arity(self):
        est = chase_cost([COPY])
        assert est.degree == 2  # no skolems: degree = max arity
        assert not est.exponential
        assert est.fact_bound(10) is not None

    def test_diverging_has_no_bound(self):
        est = chase_cost([DIVERGING])
        assert est.degree is None
        assert est.exponential
        assert est.fact_bound(10) is None
        assert est.value_bound(10) is None

    def test_skolem_arity_drives_degree(self):
        # f_z(x,y): w = 2, depth 1 -> degree = A * w^D = 2 * 2 = 4
        est = chase_cost([parse_tgd("S(x,y) -> exists z . R(x,z)")])
        assert est.max_skolem_arity == 2
        assert est.degree == 4

    def test_fact_bound_is_monotone_in_n(self):
        est = chase_cost([parse_tgd("S(x,y) -> exists z . R(x,z)")])
        bounds = [est.fact_bound(n) for n in (1, 5, 10, 100)]
        assert bounds == sorted(bounds)

    def test_fact_bound_covers_actual_chase(self):
        tgds = [parse_tgd("S(x) -> exists y . R(x,y)")]
        est = chase_cost(tgds)
        instance = Instance([Atom("S", (Constant(f"a{i}"),)) for i in range(3)])
        result = fixpoint_chase(instance, tgds)
        n = len({arg for fact in instance for arg in fact.args})
        assert len(result.instance) <= est.fact_bound(n)

    def test_reuses_supplied_verdict(self):
        verdict = classify_termination([COPY])
        est = chase_cost([COPY], verdict=verdict)
        assert est.termination is verdict

    def test_to_dict_shape(self):
        payload = chase_cost([COPY]).to_dict()
        assert payload["termination_class"] == "weakly-acyclic"
        assert payload["degree"] == 2
        assert payload["exponential"] is False


class TestSweepCost:
    def test_sigma_star_is_non_elementary(self):
        est = sweep_cost([SIGMA_STAR], SIGMA_STAR)
        assert est.k == 9
        assert est.non_elementary
        assert est.pattern_count > CC001_PATTERN_LIMIT
        assert est.cost_units >= est.pattern_count

    def test_flat_rhs_has_one_pattern(self):
        est = sweep_cost([COPY], COPY)
        assert est.pattern_count == 1
        assert not est.non_elementary
        assert est.atoms_per_check == 2

    def test_same_schema_flat_rhs_supported(self):
        # to_nested() would reject this; sweep_cost must not route through it
        est = sweep_cost([DIVERGING], DIVERGING)
        assert est.pattern_count == 1

    def test_saturating_count_agrees_with_exact_when_small(self):
        small = parse_nested_tgd("S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))")
        for k in (1, 2, 3):
            assert count_k_patterns_saturating(small, k) == count_k_patterns(small, k)

    def test_saturating_count_clamps_deep_nesting(self):
        assert count_k_patterns_saturating(SIGMA_STAR, 9, cap=10**6) == 10**6

    def test_k_zero_rejected(self):
        with pytest.raises(DependencyError):
            count_k_patterns_saturating(SIGMA_STAR, 0)

    def test_rejects_egd_rhs(self):
        from repro.logic.parser import parse_egd

        with pytest.raises(DependencyError):
            sweep_cost([COPY], parse_egd("R(x,y) & R(x,z) -> y = z"))


class TestImpliesBudget:
    def test_budget_fails_fast_without_enumeration(self):
        # subsumption off: the pre-pass would settle the renamed copy before
        # the sweep (and hence before the budget gate) is ever reached
        started = time.monotonic()
        with pytest.raises(BudgetExceeded) as excinfo:
            implies_tgd(
                [SIGMA_STAR], SIGMA_STAR_RENAMED, budget=10_000, subsumption=False
            )
        elapsed = time.monotonic() - started
        assert elapsed < 2.0  # static prediction, not a partial sweep
        assert excinfo.value.budget == 10_000
        assert excinfo.value.predicted is not None
        assert "CC001" in str(excinfo.value)

    def test_generous_budget_does_not_interfere(self):
        clear_chase_cache()
        intro = parse_nested_tgd(
            "S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))"
        )
        result = implies_tgd([intro], intro, budget=10**9, subsumption=False)
        assert result.holds

    def test_no_budget_means_no_gate(self):
        # the max_patterns guard still applies, but no BudgetExceeded
        from repro.errors import ResourceLimitExceeded

        with pytest.raises(ResourceLimitExceeded):
            implies_tgd(
                [SIGMA_STAR], SIGMA_STAR_RENAMED, max_patterns=10, subsumption=False
            )


class TestChaseBudget:
    def test_runtime_cap_on_uncertified_chase(self):
        instance = Instance([Atom("E", (Constant("a"), Constant("b")))])
        with pytest.raises(BudgetExceeded) as excinfo:
            fixpoint_chase(instance, [DIVERGING], max_rounds=50, budget=20)
        assert "CC002" in str(excinfo.value)

    def test_static_elision_for_certified_set_within_budget(self):
        instance = Instance([Atom("S", (Constant("a"), Constant("b")))])
        result = fixpoint_chase(instance, [COPY], budget=10**12)
        assert result.reached_fixpoint

    def test_input_larger_than_budget_rejected(self):
        instance = Instance(
            [Atom("S", (Constant(f"a{i}"), Constant(f"b{i}"))) for i in range(10)]
        )
        with pytest.raises(BudgetExceeded):
            fixpoint_chase(instance, [COPY], budget=5)


class TestCostHierarchyDifferential:
    """Certified sets must reach fixpoint within the predicted fact bound."""

    @settings(max_examples=60, deadline=None)
    @given(tgds=same_schema_tgds())
    def test_certified_sets_terminate_within_bound(self, tgds):
        clear_acyclicity_cache()
        verdict = classify_termination(tgds, mfa_max_rounds=6, mfa_max_facts=2_000)
        if not verdict.guarantees_termination:
            return
        est = chase_cost(tgds, verdict=verdict)
        instance = Instance(
            [
                Atom("R", (Constant("a"), Constant("b"))),
                Atom("P", (Constant("a"),)),
                Atom("U", (Constant("a"), Constant("b"), Constant("c"))),
            ]
        )
        n = len({arg for fact in instance for arg in fact.args})
        bound = est.fact_bound(n)
        assert bound is not None
        # every non-fixpoint round adds at least one fact, so the fixpoint
        # arrives within fact_bound + 2 rounds if the certification is sound
        result = fixpoint_chase(instance, tgds, max_rounds=bound + 2)
        assert result.reached_fixpoint, (
            f"certified {verdict.cls.name} set did not reach fixpoint: {tgds}"
        )
        assert len(result.instance) <= bound

    @settings(max_examples=60, deadline=None)
    @given(tgds=same_schema_tgds())
    def test_verdict_consistent_with_mfa_refutation(self, tgds):
        clear_acyclicity_cache()
        verdict = classify_termination(tgds, mfa_max_rounds=6, mfa_max_facts=2_000)
        if verdict.cls is TerminationClass.NOT_GUARANTEED and verdict.mfa_conclusive:
            # a conclusive MFA refutation comes with a cyclic-term witness
            assert verdict.mfa_cyclic_term is not None
