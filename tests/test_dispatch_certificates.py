"""Property tests: tier-certified programs agree across every backend.

The certificate-driven dispatch is only sound if the backends it switches
between are observationally identical: for a program the frontier analyzer
certifies (any tier below non-elementary), the unbounded fixpoint chase must
produce the *same fact set* on the tuple, columnar, and SQL backends --
ground Skolem-term nulls make the fixpoint canonical, so equality is literal.
Instances are drawn by Hypothesis over small constant pools; programs are the
certified witness sets of the frontier test-bed, one per tier below
non-elementary.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis.frontier import ComplexityTier, frontier_report
from repro.engine.fixpoint_chase import _clauses_of, fixpoint_chase
from repro.engine.sql_backend import sql_compilable
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.parser import parse_tgd
from repro.logic.values import Constant
from repro.workloads.families import ladder_tgds

PROGRAMS = {
    # tier PTIME, weakly acyclic: the existential ladder
    "ladder": (ladder_tgds(2), ["T0", "T1"]),
    # tier PTIME, jointly-but-not-weakly acyclic
    "ja": (
        [
            parse_tgd("E(x,y) & E(y,x) -> exists z . E(y,z)"),
            parse_tgd("E(x,y) -> exists u . W(y,u)"),
        ],
        ["E"],
    ),
    # tier EXPTIME, super-weakly acyclic
    "swa": (
        [
            parse_tgd("S(x) -> exists y, z . R(y,z) & R(z,y)"),
            parse_tgd("R(u,u) -> exists w . S(w)"),
        ],
        ["S", "R"],
    ),
    # tier 2-EXPTIME, model-faithful acyclic
    "mfa": (
        [
            parse_tgd("A(x) -> exists y . L(x,y)"),
            parse_tgd("L(x,y) & B(y) -> exists w . A(w)"),
        ],
        ["A", "B"],
    ),
}

CONSTANTS = [Constant(name) for name in "abcde"]


def instances_over(relations):
    """Instances mixing unary/binary facts of *relations* over a small pool."""
    def fact(relation):
        unary = relation in ("S", "A", "B")
        args = st.tuples(st.sampled_from(CONSTANTS)) if unary else st.tuples(
            st.sampled_from(CONSTANTS), st.sampled_from(CONSTANTS)
        )
        return st.builds(lambda a: Atom(relation, a), args)

    return st.lists(
        st.one_of([fact(relation) for relation in relations]),
        min_size=1,
        max_size=8,
    ).map(Instance)


def fact_set(result):
    return frozenset(map(repr, result.instance))


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_program_is_certified_below_non_elementary(name):
    deps, _relations = PROGRAMS[name]
    report = frontier_report(deps)
    assert report.certified
    assert report.tier.tier < ComplexityTier.NON_ELEMENTARY


@pytest.mark.parametrize("name", sorted(PROGRAMS))
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_backends_agree_on_certified_programs(name, data):
    deps, relations = PROGRAMS[name]
    instance = data.draw(instances_over(relations))
    reference = fixpoint_chase(instance, deps, backend="tuple")
    assert reference.reached_fixpoint
    columnar = fixpoint_chase(instance, deps, backend="columnar")
    assert fact_set(columnar) == fact_set(reference)
    assert columnar.reached_fixpoint
    if sql_compilable(_clauses_of(deps)):
        sql = fixpoint_chase(instance, deps, backend="sql")
        assert fact_set(sql) == fact_set(reference)
        assert sql.reached_fixpoint


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_auto_dispatch_matches_the_reference(data):
    deps, relations = PROGRAMS["ja"]
    instance = data.draw(instances_over(relations))
    reference = fixpoint_chase(instance, deps, backend="tuple")
    auto = fixpoint_chase(instance, deps, backend="auto")
    assert fact_set(auto) == fact_set(reference)
    assert auto.tier is ComplexityTier.PTIME


def test_sql_compilability_of_the_programs():
    # the suite should exercise the SQL leg on at least one program
    assert any(
        sql_compilable(_clauses_of(deps)) for deps, _ in PROGRAMS.values()
    )
