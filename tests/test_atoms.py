"""Tests for atoms and facts."""

from repro.logic.atoms import Atom, atoms_variables
from repro.logic.terms import FuncTerm
from repro.logic.values import Constant, Null, Variable


X, Y = Variable("x"), Variable("y")
A, B = Constant("a"), Constant("b")
N = Null("n")


class TestAtomBasics:
    def test_args_coerced_to_tuple(self):
        assert Atom("S", [X, Y]).args == (X, Y)

    def test_arity(self):
        assert Atom("S", (X, Y)).arity == 2

    def test_equality_and_hash(self):
        assert Atom("S", (X,)) == Atom("S", (X,))
        assert hash(Atom("S", (X,))) == hash(Atom("S", (X,)))
        assert Atom("S", (X,)) != Atom("T", (X,))


class TestVariableExtraction:
    def test_variables_in_order(self):
        atom = Atom("S", (X, Y, X))
        assert list(atom.variables()) == [X, Y, X]

    def test_variable_set(self):
        assert Atom("S", (X, Y, X)).variable_set() == {X, Y}

    def test_variables_inside_terms(self):
        atom = Atom("R", (FuncTerm("f", (X,)), Y))
        assert atom.variable_set() == {X, Y}

    def test_atoms_variables_across_atoms(self):
        assert atoms_variables([Atom("S", (X,)), Atom("T", (Y,))]) == {X, Y}


class TestFactness:
    def test_ground_atom_is_fact(self):
        assert Atom("S", (A, N)).is_fact()

    def test_atom_with_variable_is_not_fact(self):
        assert not Atom("S", (A, X)).is_fact()

    def test_ground_skolem_term_argument_is_fact(self):
        assert Atom("S", (FuncTerm("f", (A,)),)).is_fact()

    def test_nulls_extraction(self):
        fact = Atom("S", (A, N, FuncTerm("f", (B,))))
        assert set(fact.nulls()) == {N, FuncTerm("f", (B,))}

    def test_constants_extraction(self):
        fact = Atom("S", (A, N, B))
        assert set(fact.constants()) == {A, B}


class TestSubstitutionAndRenaming:
    def test_substitute(self):
        atom = Atom("S", (X, Y))
        assert atom.substitute({X: A}) == Atom("S", (A, Y))

    def test_substitute_into_term_argument(self):
        atom = Atom("R", (FuncTerm("f", (X,)),))
        assert atom.substitute({X: A}) == Atom("R", (FuncTerm("f", (A,)),))

    def test_rename_values_top_level_only(self):
        fact = Atom("S", (A, B))
        assert fact.rename_values({A: B}) == Atom("S", (B, B))

    def test_rename_values_identity_outside_map(self):
        fact = Atom("S", (A, N))
        assert fact.rename_values({}) == fact
