"""Legacy setup shim.

The pinned offline environment has setuptools but no `wheel`, so PEP-660
editable installs (`pip install -e .`) cannot build. This shim lets
`python setup.py develop` (and `pip install -e . --no-build-isolation` on
newer toolchains) work either way. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
